package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/agent"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e8 validates Theorem 8: in the Moving Client variant with a fast agent
// (m_a = (1+ε)·m_s) and no augmentation, the ratio grows like
// √T·ε/(1+ε). The Follow-MtC algorithm runs on the fast-agent
// construction; ratios are measured against the adversary witness.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Moving Client lower bound: fast agent forces ratio ~ √T·ε/(1+ε)",
		Claim: "Theorem 8: Ω(√T·ε/(1+ε)) when m_a = (1+ε)·m_s and the server is not augmented",
		Run:   runE8,
	}
}

func runE8(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	epss := []float64{0.25, 0.5, 1}
	Ts := []int{400, 1600, 6400}

	type point struct {
		eps float64
		T   int
	}
	var points []point
	for _, e := range epss {
		for _, T := range Ts {
			points = append(points, point{eps: e, T: cfg.scaleT(T)})
		}
	}
	table := traceio.Table{Columns: []string{"eps", "T", "ratio_mean", "ratio_stderr"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		g := adversary.Theorem8(adversary.Theorem8Params{T: p.T, D: 1, MS: 1, Eps: p.eps, Dim: 1}, r)
		res, err := sim.Run(g.Instance.ToCore(), agent.Adapt(g.Instance, agent.NewFollow()), sim.RunOptions{})
		if err != nil {
			panic(err)
		}
		return sim.Ratio(res.Cost.Total(), g.WitnessCost())
	})
	for pi, p := range points {
		s := stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
		table.Add(p.eps, float64(p.T), s.Mean, s.StdErr)
	}
	var findings []string
	for _, e := range epss {
		var xs, ys []float64
		for _, row := range table.Rows {
			if row[0] == e {
				xs = append(xs, row[1])
				ys = append(ys, row[2])
			}
		}
		fit := stats.LogLogSlope(xs, ys)
		findings = append(findings, fmt.Sprintf("ε=%g: ratio ~ T^%.3f (R²=%.3f); paper predicts exponent 0.5", e, fit.Slope, fit.R2))
	}
	return Result{ID: "E8", Title: e8().Title, Claim: e8().Claim, Table: table, Findings: findings}
}
