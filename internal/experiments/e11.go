package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// e11 ablates the two design choices DESIGN.md calls out in the paper's
// MtC rule:
//
//   - the tie-break "closest minimizer to the server" (vs the midpoint of
//     the median segment), and
//   - the damped speed min(1, r/D)·d (vs always moving at full speed).
//
// Each variant runs on the Theorem-2 adversarial line instance (where the
// analysis needs the paper's choices) and on noisy 2-D workloads with
// r < D (where full speed over-reacts to scatter).
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Ablations: tie-break rule and the min(1, r/D) speed rule",
		Claim: "The paper's tie-break and damped speed are load-bearing: removing either inflates cost on the workloads their analysis targets",
		Run:   runE11,
	}
}

// variant codes in the E11 table.
var e11Variants = []struct {
	name string
	opts core.MtCOptions
}{
	{"paper", core.MtCOptions{}},
	{"midpoint", core.MtCOptions{TieBreak: core.TieBreakMidpoint}},
	{"full-speed", core.MtCOptions{Speed: core.SpeedFull}},
	{"midpoint+full", core.MtCOptions{TieBreak: core.TieBreakMidpoint, Speed: core.SpeedFull}},
}

// scenario codes in the E11 table.
const (
	scAdversarialLine = iota
	scHotspotScatter
	scBurst
	scStraddle
)

func runE11(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	scenarios := []int{scAdversarialLine, scHotspotScatter, scBurst, scStraddle}

	type point struct {
		sc, v int
	}
	var points []point
	for _, sc := range scenarios {
		for v := range e11Variants {
			points = append(points, point{sc: sc, v: v})
		}
	}
	table := traceio.Table{Columns: []string{"scenario", "variant", "cost_mean", "cost_stderr", "vs_paper"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		wlStream := xrand.NewStream(cfg.Seed^0x5ca1ab1e, uint64(i%cfg.Seeds)*3+uint64(p.sc))
		var in *core.Instance
		switch p.sc {
		case scAdversarialLine:
			// D=4 > r=1 so the damped speed rule differs from full speed
			// on this instance.
			g := adversary.Theorem2(adversary.Theorem2Params{
				T: cfg.scaleT(cyclesT(0.25, 4)), D: 4, M: 1, Delta: 0.25, Rmin: 1, Rmax: 1, Dim: 1,
			}, wlStream)
			in = g.Instance
		case scStraddle:
			// Pairs of requests straddling a slowly drifting center: the
			// median set is the whole between-segment, so the tie-break
			// rule decides whether the server holds still (paper) or
			// jitters to the segment midpoint (ablation).
			in = straddleInstance(wlStream, cfg.scaleT(600))
		case scHotspotScatter:
			// r=1 < D=8: the damped speed rule matters; scatter is large
			// relative to drift so full speed chases noise.
			c := core.Config{Dim: 2, D: 8, M: 1, Delta: 0.25, Order: core.MoveFirst}
			in = workload.Hotspot{Half: 15, Sigma: 4, Speed: 0.2}.Generate(wlStream, c, cfg.scaleT(600))
		case scBurst:
			c := core.Config{Dim: 2, D: 4, M: 1, Delta: 0.25, Order: core.MoveFirst}
			in = workload.Burst{}.Generate(wlStream, c, cfg.scaleT(600))
		}
		alg := core.NewMtCWithOptions(e11Variants[p.v].opts)
		res, err := sim.Run(in, alg, sim.RunOptions{})
		if err != nil {
			panic(err)
		}
		return res.Cost.Total()
	})

	means := make([]stats.Summary, len(points))
	for pi := range points {
		means[pi] = stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
	}
	paperMean := map[int]float64{}
	for pi, p := range points {
		if p.v == 0 {
			paperMean[p.sc] = means[pi].Mean
		}
	}
	for pi, p := range points {
		table.Add(float64(p.sc), float64(p.v), means[pi].Mean, means[pi].StdErr, means[pi].Mean/paperMean[p.sc])
	}
	findings := []string{
		"scenario codes: 0=adversarial line (Thm 2, δ=1/4, D=4) 1=hotspot with heavy scatter (r<D) 2=burst 3=straddling pairs (non-unique median); variant codes: 0=paper 1=midpoint tie-break 2=full speed 3=both",
	}
	for _, sc := range scenarios {
		worst, worstRel := 0, 1.0
		for pi, p := range points {
			if p.sc == sc {
				if rel := means[pi].Mean / paperMean[sc]; rel > worstRel {
					worstRel, worst = rel, p.v
				}
			}
		}
		findings = append(findings, fmt.Sprintf("scenario %d: worst variant %q at %.2f× the paper rule", sc, e11Variants[worst].name, worstRel))
	}
	return Result{ID: "E11", Title: e11().Title, Claim: e11().Claim, Table: table, Findings: findings}
}

// straddleInstance emits pairs of requests symmetric around a center that
// drifts at a fraction of m, in 1-D. Every batch's 1-median is the whole
// segment between the pair, so the tie-break rule is exercised each step.
func straddleInstance(rng *xrand.Rand, T int) *core.Instance {
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.25, Order: core.MoveFirst}
	in := &core.Instance{Config: cfg, Start: geom.NewPoint(0)}
	center := 0.0
	for t := 0; t < T; t++ {
		center += rng.Range(-0.3, 0.3)
		gap := rng.Range(2, 6)
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{
			geom.NewPoint(center - gap/2),
			geom.NewPoint(center + gap/2),
		}})
	}
	return in
}
