package experiments

import (
	"strings"
	"testing"
)

func TestPlotForE1(t *testing.T) {
	res := Result{ID: "E1"}
	res.Table.Columns = []string{"D", "T", "ratio_mean", "ratio_stderr", "ref"}
	res.Table.Add(1, 100, 6.4, 0, 10)
	res.Table.Add(1, 400, 13, 0, 20)
	res.Table.Add(4, 100, 2.8, 0, 2.5)
	res.Table.Add(4, 400, 5, 0, 5)
	out, ok := PlotFor(res)
	if !ok {
		t.Fatal("E1 should plot")
	}
	if !strings.Contains(out, "D=1") || !strings.Contains(out, "D=4") {
		t.Fatalf("missing series legend:\n%s", out)
	}
	if !strings.Contains(out, "slope 0.5") {
		t.Fatal("missing title")
	}
}

func TestPlotForFilters(t *testing.T) {
	res := Result{ID: "E2"}
	res.Table.Columns = []string{"delta", "Rmax_over_Rmin", "T", "ratio_mean", "se", "xd"}
	res.Table.Add(0.5, 1, 64, 1.0, 0, 0.5)
	res.Table.Add(0.25, 1, 184, 2.1, 0, 0.53)
	res.Table.Add(0.25, 4, 184, 7.0, 0, 1.75) // filtered out (imbalance row)
	out, ok := PlotFor(res)
	if !ok {
		t.Fatal("E2 should plot")
	}
	if strings.Count(out, "E2") < 1 {
		t.Fatalf("missing series:\n%s", out)
	}
}

func TestPlotForUnknownExperiment(t *testing.T) {
	res := Result{ID: "E6"}
	res.Table.Columns = []string{"a"}
	res.Table.Add(1)
	if _, ok := PlotFor(res); ok {
		t.Fatal("E6 has no natural curve and should not plot")
	}
}

func TestPlotForEmptyAfterFilter(t *testing.T) {
	res := Result{ID: "E4"}
	res.Table.Columns = []string{"wl", "delta", "T", "ratio_hi", "ratio_lo", "x"}
	res.Table.Add(1, 0.5, 600, 1.7, 0.87, 0.85) // only hotspot rows; filter wants wl=0
	if _, ok := PlotFor(res); ok {
		t.Fatal("empty filtered plot should report ok=false")
	}
}

func TestPlotForAllRegisteredSpecsAgainstRealRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skip in -short mode")
	}
	for id := range plotSpecs {
		e, err := ByID(id)
		if err != nil {
			t.Fatalf("spec for unknown experiment %s", id)
		}
		res := e.Run(quickCfg())
		out, ok := PlotFor(res)
		if !ok {
			t.Fatalf("%s: plot failed on real data", id)
		}
		if strings.Contains(out, "no data") {
			t.Fatalf("%s: plot empty on real data:\n%s", id, out)
		}
	}
}
