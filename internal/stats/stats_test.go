package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if math.Abs(s.StdErr-s.Std/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("StdErr = %v", s.StdErr)
	}
}

func TestSummarizeFiltersNonFinite(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3, math.Inf(1)})
	if s.N != 2 || s.Mean != 2 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single Summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4}
	if Quantile(sorted, 0) != 0 || Quantile(sorted, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(sorted, 0.5) != 2 {
		t.Fatalf("median = %v", Quantile(sorted, 0.5))
	}
	if got := Quantile(sorted, 0.25); got != 1 {
		t.Fatalf("q25 = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestOLSExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := OLS(x, y)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestOLSNoisy(t *testing.T) {
	r := xrand.New(1)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := r.Range(0, 10)
		x = append(x, xi)
		y = append(y, 4*xi-2+r.NormMS(0, 0.5))
	}
	fit := OLS(x, y)
	if math.Abs(fit.Slope-4) > 0.1 || math.Abs(fit.Intercept+2) > 0.3 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestOLSDegenerate(t *testing.T) {
	fit := OLS([]float64{1}, []float64{2})
	if fit.Slope != 0 || fit.N != 1 {
		t.Fatalf("degenerate fit = %+v", fit)
	}
	fit = OLS([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 {
		t.Fatalf("vertical fit = %+v", fit)
	}
}

func TestOLSPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OLS([]float64{1}, []float64{1, 2})
}

func TestLogLogSlopeRecoverExponent(t *testing.T) {
	// y = 3·x^1.5.
	var x, y []float64
	for _, xi := range []float64{1, 2, 4, 8, 16, 32} {
		x = append(x, xi)
		y = append(y, 3*math.Pow(xi, 1.5))
	}
	fit := LogLogSlope(x, y)
	if math.Abs(fit.Slope-1.5) > 1e-9 {
		t.Fatalf("slope = %v, want 1.5", fit.Slope)
	}
}

func TestLogLogSlopeDropsNonPositive(t *testing.T) {
	fit := LogLogSlope([]float64{-1, 1, 2, 4}, []float64{5, 1, 2, 4})
	if math.Abs(fit.Slope-1) > 1e-9 {
		t.Fatalf("slope = %v, want 1 after dropping bad pair", fit.Slope)
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	r := xrand.New(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormMS(10, 2)
	}
	lo, hi := BootstrapCI(xrand.New(6), xs, Mean, 500, 0.95)
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] misses true mean 10", lo, hi)
	}
	if hi-lo > 2 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapCIPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BootstrapCI(xrand.New(1), nil, Mean, 10, 0.9)
}

func TestMeanGeoMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if math.Abs(GeoMean([]float64{1, 4})-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", GeoMean([]float64{1, 4}))
	}
	if !math.IsNaN(GeoMean([]float64{-1, 0})) {
		t.Fatal("GeoMean of non-positive should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42, math.NaN()} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d", h.Over)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
}

func TestHistogramPanicsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestFilterFinite(t *testing.T) {
	out := FilterFinite([]float64{1, math.NaN(), math.Inf(-1), 2})
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("FilterFinite = %v", out)
	}
}
