// Package stats provides the summary statistics used by the experiment
// harness: moments, quantiles, histograms, ordinary least squares (for
// fitting growth exponents on log–log axes), and bootstrap confidence
// intervals.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Summary holds the standard descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1)
	StdErr float64 // Std/√N
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary, ignoring NaN and ±Inf entries. An empty
// (or all-non-finite) input yields a zero Summary.
func Summarize(xs []float64) Summary {
	clean := FilterFinite(xs)
	n := len(clean)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range clean {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, v := range clean {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
		s.StdErr = s.Std / math.Sqrt(float64(n))
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s
}

// FilterFinite returns the finite entries of xs (a new slice).
func FilterFinite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Fit is an ordinary-least-squares line fit y ≈ Slope·x + Intercept.
type Fit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	N  int
}

// OLS fits a line through the finite (x, y) pairs. Fewer than two usable
// points yield a zero Fit.
func OLS(x, y []float64) Fit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: OLS length mismatch %d vs %d", len(x), len(y)))
	}
	var xs, ys []float64
	for i := range x {
		if isFinite(x[i]) && isFinite(y[i]) {
			xs = append(xs, x[i])
			ys = append(ys, y[i])
		}
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{N: len(xs)}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{N: len(xs)}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx, N: len(xs)}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// LogLogSlope fits log(y) ≈ slope·log(x) + c and returns the fit — the
// standard way to read off a polynomial growth exponent. Non-positive
// pairs are dropped.
func LogLogSlope(x, y []float64) Fit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: LogLogSlope length mismatch %d vs %d", len(x), len(y)))
	}
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	return OLS(lx, ly)
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// statistic at the given confidence level (e.g. 0.95), using resamples
// drawn from r. It panics on an empty sample.
func BootstrapCI(r *xrand.Rand, xs []float64, stat func([]float64) float64, resamples int, conf float64) (lo, hi float64) {
	clean := FilterFinite(xs)
	if len(clean) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	vals := make([]float64, resamples)
	buf := make([]float64, len(clean))
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = clean[r.IntN(len(clean))]
		}
		vals[b] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha)
}

// Mean is a convenience statistic for BootstrapCI.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive entries (NaN if none).
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, v := range xs {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

// Histogram is a fixed-width binned count over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(hi > lo) || bins < 1 {
		panic("stats: NewHistogram requires hi > lo and bins >= 1")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case math.IsNaN(v):
		return
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		h.Counts[int((v-h.Lo)/h.binWidth)]++
	}
}

// Total returns the number of recorded in-range samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
