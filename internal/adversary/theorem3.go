package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Theorem3Params configures the Ω(r/D) construction for the Answer-First
// variant (Theorem 3 of the paper).
type Theorem3Params struct {
	// T is the sequence length (an even number of steps is used; a
	// trailing odd step is filled with a phase-1 step).
	T int
	// D is the page weight.
	D float64
	// M is the movement cap m.
	M float64
	// R is the fixed number of requests per step.
	R int
	// Dim is the dimension; the construction moves along the first axis.
	Dim int
	// Delta optionally grants the online algorithm augmentation; the
	// theorem's bound is independent of it.
	Delta float64
}

func (p Theorem3Params) withDefaults() Theorem3Params {
	if p.Dim == 0 {
		p.Dim = 1
	}
	if p.M == 0 {
		p.M = 1
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.R == 0 {
		p.R = 1
	}
	return p
}

// Theorem3 builds the two-step cycle of Theorem 3 for the Answer-First
// order. In step 1 of each cycle, r requests appear on the cycle base
// (where both servers sit); the adversary then moves distance m in a fresh
// coin-flip direction. In step 2, r requests appear on the adversary's new
// position; the adversary stays. An Answer-First online algorithm must
// serve step 2 from a position chosen before the coin flip was revealed,
// paying r·m with probability 1/2, while the adversary pays D·m per cycle.
func Theorem3(p Theorem3Params, r *xrand.Rand) Generated {
	p = p.withDefaults()
	if p.T < 1 {
		panic("adversary: Theorem3 requires T >= 1")
	}
	start := geom.Zero(p.Dim)
	in := &core.Instance{
		Config: core.Config{Dim: p.Dim, D: p.D, M: p.M, Delta: p.Delta, Order: core.AnswerFirst},
		Start:  start,
		Steps:  make([]core.Step, 0, p.T),
	}
	witness := make([]geom.Point, 1, p.T+1)
	witness[0] = start.Clone()

	base := start.Clone()
	cycles := 0
	for len(in.Steps) < p.T {
		cycles++
		sign := r.Sign()
		next := base.Add(axisStep(p.Dim, sign, p.M))
		// Step 1: requests on the base; adversary serves there (cost 0 in
		// Answer-First, since it sits on base) and then moves to next.
		in.Steps = append(in.Steps, core.Step{Requests: repeatPoint(base, p.R)})
		witness = append(witness, next.Clone())
		if len(in.Steps) == p.T {
			break
		}
		// Step 2: requests on the adversary's new position; it stays.
		in.Steps = append(in.Steps, core.Step{Requests: repeatPoint(next, p.R)})
		witness = append(witness, next.Clone())
		base = next
	}
	return Generated{
		Instance: in,
		Witness:  witness,
		Note:     fmt.Sprintf("Theorem3(T=%d, D=%g, m=%g, r=%d, cycles=%d)", p.T, p.D, p.M, p.R, cycles),
	}
}
