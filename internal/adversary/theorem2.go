package adversary

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Theorem2Params configures the Ω((1/δ)·Rmax/Rmin) construction against
// online algorithms augmented to speed (1+δ)m (Theorem 2 of the paper).
type Theorem2Params struct {
	// T is the total sequence length (cycles are truncated to fit).
	T int
	// D is the page weight.
	D float64
	// M is the offline movement cap m.
	M float64
	// Delta is the online augmentation δ ∈ (0, 1].
	Delta float64
	// Rmin and Rmax are the request counts in the separation and the
	// punishment phase respectively.
	Rmin, Rmax int
	// Dim is the dimension; the construction moves along the first axis.
	Dim int
	// X is the separation-phase length; 0 selects an automatic value large
	// enough that the adversary's cost is dominated by the Rmin·m·x² term,
	// as the proof requires.
	X int
}

func (p Theorem2Params) withDefaults() Theorem2Params {
	if p.Dim == 0 {
		p.Dim = 1
	}
	if p.M == 0 {
		p.M = 1
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.Rmin == 0 {
		p.Rmin = 1
	}
	if p.Rmax == 0 {
		p.Rmax = p.Rmin
	}
	if p.X == 0 {
		// x >= 2/δ (paper) and x >= D/(δ·Rmin) so that the D-terms of the
		// adversary's cost are dominated.
		x := math.Max(2/p.Delta, p.D/(p.Delta*float64(p.Rmin)))
		p.X = int(math.Ceil(x))
		if p.X < 2 {
			p.X = 2
		}
	}
	return p
}

// Theorem2 builds the cyclic two-phase sequence of Theorem 2. Each cycle:
// Phase A (x steps) issues Rmin requests per step on the cycle's base
// position while the adversary walks m per step in a fresh coin-flip
// direction; Phase B (⌈x/δ⌉ steps) issues Rmax requests per step on the
// adversary's position, which keeps moving. An augmented online algorithm
// closes the x·m gap at rate at most δ·m per step, paying
// Θ(Rmax·m·x²/δ) per cycle while the adversary pays O(Rmin·m·x²).
func Theorem2(p Theorem2Params, r *xrand.Rand) Generated {
	p = p.withDefaults()
	if p.T < 1 {
		panic("adversary: Theorem2 requires T >= 1")
	}
	if !(p.Delta > 0) || p.Delta > 1 {
		panic("adversary: Theorem2 requires 0 < delta <= 1")
	}
	if p.Rmax < p.Rmin {
		panic("adversary: Theorem2 requires Rmax >= Rmin")
	}
	phaseB := int(math.Ceil(float64(p.X) / p.Delta))

	start := geom.Zero(p.Dim)
	in := &core.Instance{
		Config: core.Config{Dim: p.Dim, D: p.D, M: p.M, Delta: p.Delta, Order: core.MoveFirst},
		Start:  start,
		Steps:  make([]core.Step, 0, p.T),
	}
	witness := make([]geom.Point, 1, p.T+1)
	witness[0] = start.Clone()

	base := start.Clone()
	pos := start.Clone()
	cycles := 0
	for len(in.Steps) < p.T {
		sign := r.Sign()
		step := axisStep(p.Dim, sign, p.M)
		cycles++
		// Phase A: Rmin requests on the base; adversary walks away.
		for i := 0; i < p.X && len(in.Steps) < p.T; i++ {
			pos = pos.Add(step)
			witness = append(witness, pos.Clone())
			in.Steps = append(in.Steps, core.Step{Requests: repeatPoint(base, p.Rmin)})
		}
		// Phase B: Rmax requests on the adversary; it keeps walking.
		for j := 0; j < phaseB && len(in.Steps) < p.T; j++ {
			pos = pos.Add(step)
			witness = append(witness, pos.Clone())
			in.Steps = append(in.Steps, core.Step{Requests: repeatPoint(pos, p.Rmax)})
		}
		base = pos.Clone()
	}
	return Generated{
		Instance: in,
		Witness:  witness,
		Note: fmt.Sprintf("Theorem2(T=%d, D=%g, m=%g, delta=%g, Rmin=%d, Rmax=%d, x=%d, cycles=%d)",
			p.T, p.D, p.M, p.Delta, p.Rmin, p.Rmax, p.X, cycles),
	}
}

// repeatPoint returns n copies of p (cloned).
func repeatPoint(p geom.Point, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = p.Clone()
	}
	return out
}
