// Package adversary implements the randomized lower-bound constructions of
// the paper (Theorems 1, 2, 3, and 8) as oblivious input generators.
//
// Each construction draws its coin flips from an explicit random stream —
// independently of any online algorithm, exactly as required for oblivious
// adversaries under Yao's principle — and emits both the request sequence
// and the adversary's own server trajectory. That trajectory is a feasible
// offline solution (it respects the unaugmented cap m), so its cost upper
// bounds OPT; measured ratios ALG/witness therefore lower bound the true
// competitive ratio, which is the conservative direction for validating
// lower-bound theorems.
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Generated bundles a constructed instance with the adversary's witness
// trajectory.
type Generated struct {
	// Instance is the constructed input sequence.
	Instance *core.Instance
	// Witness is the adversary's server trajectory, positions[0..T] with
	// positions[0] == Instance.Start. It respects the offline cap m.
	Witness []geom.Point
	// Note describes the construction parameters for reports.
	Note string
}

// WitnessCost returns the cost of the witness trajectory (an upper bound
// on OPT). It panics if the witness is infeasible or malformed — the
// generators in this package always produce feasible witnesses, so a
// failure here is a bug.
func (g *Generated) WitnessCost() core.Cost {
	c, err := sim.CheckFeasible(g.Instance, g.Witness, g.Instance.Config.OfflineCap(), 0)
	if err != nil {
		panic(fmt.Sprintf("adversary: infeasible witness: %v", err))
	}
	return c
}

// axisStep returns the displacement sign·m along the first coordinate axis
// in the given dimension.
func axisStep(dim int, sign, m float64) geom.Point {
	v := geom.Zero(dim)
	v[0] = sign * m
	return v
}
