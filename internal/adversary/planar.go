package adversary

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// PlanarParams configures genuinely two-dimensional variants of the
// Theorem-2 construction, built to probe the paper's open problem: the
// upper bound for MtC in the plane is O(1/δ^{3/2}) while the lower bound
// is Ω(1/δ), and the authors conjecture the truth is Θ(1/δ). These
// constructions let the adversary exploit the plane (fresh escape
// directions, perpendicular request offsets) so experiments can measure
// which exponent MtC actually exhibits.
type PlanarParams struct {
	// T is the total sequence length.
	T int
	// D is the page weight.
	D float64
	// M is the offline movement cap.
	M float64
	// Delta is the online augmentation δ ∈ (0, 1].
	Delta float64
	// X is the separation-phase length; 0 selects max(2, ⌈2/δ⌉, ⌈D/δ⌉).
	X int
	// Style selects the 2-D twist, see the constants below.
	Style PlanarStyle
}

// PlanarStyle enumerates the 2-D escape patterns.
type PlanarStyle int

const (
	// StyleRandomDir draws a fresh uniformly random escape direction per
	// cycle — the natural planar analog of the ±1 coin on the line.
	StyleRandomDir PlanarStyle = iota
	// StyleZigzag rotates the escape direction by ±90° (coin flip) each
	// cycle, so the online server's accumulated momentum is always
	// perpendicular to the new escape.
	StyleZigzag
	// StylePerpOffset escapes in a random direction but places the
	// phase-B requests offset perpendicularly from the adversary's
	// position by √δ times the current gap — planting P'_Opt near the
	// 90° configuration that makes the paper's 2-D analysis lose the
	// √δ factor (Lemma 6 / Figure 2).
	StylePerpOffset
)

// String names the style for reports.
func (s PlanarStyle) String() string {
	switch s {
	case StyleRandomDir:
		return "random-dir"
	case StyleZigzag:
		return "zigzag"
	case StylePerpOffset:
		return "perp-offset"
	default:
		return fmt.Sprintf("PlanarStyle(%d)", int(s))
	}
}

func (p PlanarParams) withDefaults() PlanarParams {
	if p.M == 0 {
		p.M = 1
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.X == 0 {
		x := math.Max(2/p.Delta, p.D/p.Delta)
		p.X = int(math.Ceil(x))
		if p.X < 2 {
			p.X = 2
		}
	}
	return p
}

// Planar builds the chosen 2-D construction. Each cycle: phase A (x steps)
// pins one request per step on the cycle base while the adversary walks m
// per step along the cycle's escape direction; phase B (⌈x/δ⌉ steps)
// issues one request per step at (or perpendicular-offset from) the
// adversary, which keeps walking. The witness is the adversary trajectory.
func Planar(p PlanarParams, r *xrand.Rand) Generated {
	p = p.withDefaults()
	if p.T < 1 {
		panic("adversary: Planar requires T >= 1")
	}
	if !(p.Delta > 0) || p.Delta > 1 {
		panic("adversary: Planar requires 0 < delta <= 1")
	}
	phaseB := int(math.Ceil(float64(p.X) / p.Delta))

	start := geom.Zero(2)
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: p.D, M: p.M, Delta: p.Delta, Order: core.MoveFirst},
		Start:  start,
		Steps:  make([]core.Step, 0, p.T),
	}
	witness := make([]geom.Point, 1, p.T+1)
	witness[0] = start.Clone()

	base := start.Clone()
	pos := start.Clone()
	dir := geom.NewPoint(1, 0)
	cycles := 0
	for len(in.Steps) < p.T {
		cycles++
		dir = p.nextDirection(r, dir)
		step := dir.Scale(p.M)
		// Phase A: pin on the base.
		for i := 0; i < p.X && len(in.Steps) < p.T; i++ {
			pos = pos.Add(step)
			witness = append(witness, pos.Clone())
			in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{base.Clone()}})
		}
		// Phase B: requests at (or offset from) the adversary.
		perp := geom.NewPoint(-dir[1], dir[0])
		perpSign := r.Sign()
		for j := 0; j < phaseB && len(in.Steps) < p.T; j++ {
			pos = pos.Add(step)
			witness = append(witness, pos.Clone())
			req := pos.Clone()
			if p.Style == StylePerpOffset {
				// Offset shrinks as phase B progresses, tracking the
				// remaining gap x·m·(1 − j/phaseB).
				gap := float64(p.X) * p.M * (1 - float64(j)/float64(phaseB))
				req = req.Add(perp.Scale(perpSign * math.Sqrt(p.Delta) * gap))
			}
			in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{req}})
		}
		base = pos.Clone()
	}
	return Generated{
		Instance: in,
		Witness:  witness,
		Note: fmt.Sprintf("Planar(style=%s, T=%d, D=%g, m=%g, delta=%g, x=%d, cycles=%d)",
			p.Style, p.T, p.D, p.M, p.Delta, p.X, cycles),
	}
}

// nextDirection draws the next cycle's escape direction per the style.
func (p PlanarParams) nextDirection(r *xrand.Rand, prev geom.Point) geom.Point {
	switch p.Style {
	case StyleZigzag:
		// Rotate ±90°.
		if r.Coin() {
			return geom.NewPoint(-prev[1], prev[0])
		}
		return geom.NewPoint(prev[1], -prev[0])
	default:
		angle := r.Range(0, 2*math.Pi)
		return geom.NewPoint(math.Cos(angle), math.Sin(angle))
	}
}
