package adversary

import (
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Theorem8Params configures the Ω(√T·ε/(1+ε)) construction for the Moving
// Client variant with a fast agent, m_a = (1+ε)·m_s (Theorem 8).
type Theorem8Params struct {
	// T is the number of rounds.
	T int
	// D is the page weight.
	D float64
	// MS is the server speed m_s; the agent moves at (1+Eps)·MS.
	MS float64
	// Eps is the agent speed advantage ε > 0.
	Eps float64
	// Dim is the dimension; the construction moves along the first axis.
	Dim int
	// X tunes the separation phase; 0 selects the paper's choice
	// x = √(T·m_s/m_a).
	X int
}

func (p Theorem8Params) withDefaults() Theorem8Params {
	if p.Dim == 0 {
		p.Dim = 1
	}
	if p.MS == 0 {
		p.MS = 1
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.X == 0 {
		ma := (1 + p.Eps) * p.MS
		p.X = int(math.Round(math.Sqrt(float64(p.T) * p.MS / ma)))
	}
	if p.X < 1 {
		p.X = 1
	}
	return p
}

// GeneratedAgent bundles a Moving Client instance with the adversary's
// witness server trajectory.
type GeneratedAgent struct {
	Instance *agent.Instance
	// Witness is the adversary's server path, positions[0..T], feasible at
	// speed m_s.
	Witness []geom.Point
	Note    string
}

// WitnessCost returns the cost of the witness on the converted core
// instance (an upper bound on OPT). It panics on an infeasible witness.
func (g *GeneratedAgent) WitnessCost() float64 {
	c, err := sim.CheckFeasible(g.Instance.ToCore(), g.Witness, g.Instance.Config.MS, 0)
	if err != nil {
		panic(fmt.Sprintf("adversary: infeasible Theorem8 witness: %v", err))
	}
	return c.Total()
}

// Theorem8 builds the fast-agent construction. Phase 1: the adversary's
// server walks m_s per round in a coin-flip direction for R1 = ⌊x·m_a/m_s⌋
// rounds; the agent idles at the origin and sprints (speed m_a) to the
// adversary during the last x rounds. Phase 2: agent and adversary continue
// together at speed m_s. An online server limited to m_s ends phase 1 at
// distance ≥ x·(m_a−m_s) = x·ε·m_s from the agent with probability 1/2 and
// can never close the gap.
func Theorem8(p Theorem8Params, r *xrand.Rand) GeneratedAgent {
	p = p.withDefaults()
	if p.T < 1 {
		panic("adversary: Theorem8 requires T >= 1")
	}
	if !(p.Eps > 0) {
		panic("adversary: Theorem8 requires eps > 0")
	}
	ma := (1 + p.Eps) * p.MS
	r1 := int(math.Floor(float64(p.X) * ma / p.MS))
	if r1 > p.T {
		r1 = p.T
	}
	if r1 < 1 {
		r1 = 1
	}
	sprint := p.X // agent sprints during the last `sprint` rounds of phase 1
	if sprint > r1 {
		sprint = r1
	}

	sign := r.Sign()
	step := axisStep(p.Dim, sign, p.MS)
	start := geom.Zero(p.Dim)

	cfg := agent.Config{Dim: p.Dim, D: p.D, MS: p.MS, MA: ma, Delta: 0}
	path := make([]geom.Point, p.T)
	witness := make([]geom.Point, p.T+1)
	witness[0] = start.Clone()

	serverPos := start.Clone()
	agentPos := start.Clone()
	// Meeting point: the adversary's position at the end of phase 1.
	meet := start.Add(step.Scale(float64(r1)))
	for t := 1; t <= p.T; t++ {
		// Adversary server walks m_s per round throughout.
		serverPos = serverPos.Add(step)
		witness[t] = serverPos.Clone()
		switch {
		case t <= r1-sprint:
			// Agent idles at the origin.
		case t <= r1:
			// Agent sprints toward the meeting point at speed m_a.
			agentPos = geom.MoveToward(agentPos, meet, ma)
		default:
			// Phase 2: agent tracks the adversary at speed m_s.
			agentPos = geom.MoveToward(agentPos, serverPos, p.MS)
		}
		path[t-1] = agentPos.Clone()
	}
	in := &agent.Instance{Config: cfg, Start: start, Path: path}
	return GeneratedAgent{
		Instance: in,
		Witness:  witness,
		Note:     fmt.Sprintf("Theorem8(T=%d, D=%g, ms=%g, eps=%g, x=%d, r1=%d)", p.T, p.D, p.MS, p.Eps, p.X, r1),
	}
}
