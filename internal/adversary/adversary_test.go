package adversary

import (
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestTheorem1Structure(t *testing.T) {
	g := Theorem1(Theorem1Params{T: 100, D: 2, M: 1, Dim: 1, X: 10}, xrand.New(1))
	in := g.Instance
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.T() != 100 {
		t.Fatalf("T = %d", in.T())
	}
	// Phase 1: requests at the origin.
	for tt := 0; tt < 10; tt++ {
		if !in.Steps[tt].Requests[0].Equal(geom.Zero(1)) {
			t.Fatalf("phase-1 step %d request = %v", tt, in.Steps[tt].Requests[0])
		}
	}
	// Phase 2: requests on the witness position after the move.
	for tt := 10; tt < 100; tt++ {
		if !in.Steps[tt].Requests[0].Equal(g.Witness[tt+1]) {
			t.Fatalf("phase-2 step %d request %v != witness %v", tt, in.Steps[tt].Requests[0], g.Witness[tt+1])
		}
	}
	// Witness walks m per step.
	for tt := 1; tt <= 100; tt++ {
		if d := geom.Dist(g.Witness[tt-1], g.Witness[tt]); math.Abs(d-1) > 1e-12 {
			t.Fatalf("witness step %d length %v", tt, d)
		}
	}
}

func TestTheorem1WitnessFeasible(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := Theorem1(Theorem1Params{T: 400, D: 4, M: 0.5, Dim: 2}, xrand.New(seed))
		c := g.WitnessCost() // panics if infeasible
		if !(c.Total() > 0) {
			t.Fatalf("witness cost = %v", c)
		}
	}
}

func TestTheorem1RatioGrowsWithT(t *testing.T) {
	ratioAt := func(T int) float64 {
		sum := 0.0
		n := 10
		for seed := 0; seed < n; seed++ {
			g := Theorem1(Theorem1Params{T: T, D: 1, M: 1, Dim: 1}, xrand.New(uint64(seed)))
			res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
			sum += sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
		}
		return sum / float64(n)
	}
	small, large := ratioAt(100), ratioAt(1600)
	// √(1600)/√(100) = 4; demand at least a factor 2 to be robust.
	if large < 2*small {
		t.Fatalf("ratio did not grow with T: %v -> %v", small, large)
	}
}

func TestTheorem1DefaultX(t *testing.T) {
	g := Theorem1(Theorem1Params{T: 400, D: 1, M: 1, Dim: 1}, xrand.New(3))
	// x defaults to √400 = 20: step 19 request at origin, step 20 not.
	if !g.Instance.Steps[19].Requests[0].Equal(geom.Zero(1)) {
		t.Fatal("step 19 should be phase 1")
	}
	if g.Instance.Steps[20].Requests[0].Equal(geom.Zero(1)) {
		t.Fatal("step 20 should be phase 2")
	}
}

func TestTheorem2Structure(t *testing.T) {
	p := Theorem2Params{T: 500, D: 1, M: 1, Delta: 0.5, Rmin: 2, Rmax: 6, Dim: 1, X: 4}
	g := Theorem2(p, xrand.New(2))
	in := g.Instance
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	rmin, rmax := in.RequestRange()
	if rmin != 2 || rmax != 6 {
		t.Fatalf("request range = %d..%d", rmin, rmax)
	}
	// Phase B length = ceil(4/0.5) = 8; cycle = 12 steps. Steps 0..3 have
	// Rmin requests, steps 4..11 have Rmax requests.
	for tt := 0; tt < 4; tt++ {
		if len(in.Steps[tt].Requests) != 2 {
			t.Fatalf("phase-A step %d has %d requests", tt, len(in.Steps[tt].Requests))
		}
	}
	for tt := 4; tt < 12; tt++ {
		if len(in.Steps[tt].Requests) != 6 {
			t.Fatalf("phase-B step %d has %d requests", tt, len(in.Steps[tt].Requests))
		}
		if !in.Steps[tt].Requests[0].Equal(g.Witness[tt+1]) {
			t.Fatalf("phase-B request not on witness at step %d", tt)
		}
	}
}

func TestTheorem2WitnessFeasible(t *testing.T) {
	for _, delta := range []float64{1, 0.5, 0.25, 0.125} {
		g := Theorem2(Theorem2Params{T: 600, D: 2, M: 1, Delta: delta, Rmin: 1, Rmax: 4, Dim: 2}, xrand.New(7))
		if !(g.WitnessCost().Total() > 0) {
			t.Fatalf("delta=%v: witness cost not positive", delta)
		}
	}
}

func TestTheorem2Panics(t *testing.T) {
	for name, p := range map[string]Theorem2Params{
		"bad delta":   {T: 10, Delta: 0},
		"rmax < rmin": {T: 10, Delta: 0.5, Rmin: 5, Rmax: 2},
		"zero length": {T: 0, Delta: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Theorem2(p, xrand.New(1))
		}()
	}
}

func TestTheorem3Structure(t *testing.T) {
	g := Theorem3(Theorem3Params{T: 40, D: 2, M: 1, R: 5, Dim: 1}, xrand.New(4))
	in := g.Instance
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Config.Order != core.AnswerFirst {
		t.Fatal("Theorem3 must use Answer-First")
	}
	rmin, rmax := in.RequestRange()
	if rmin != 5 || rmax != 5 {
		t.Fatalf("request counts = %d..%d, want fixed 5", rmin, rmax)
	}
	// Even steps (0-indexed): requests on the base = witness position
	// before the move; odd steps: on the witness position.
	for tt := 0; tt < in.T(); tt++ {
		req := in.Steps[tt].Requests[0]
		if tt%2 == 0 {
			if !req.Equal(g.Witness[tt]) {
				t.Fatalf("step %d: request %v != base %v", tt, req, g.Witness[tt])
			}
		} else {
			if !req.Equal(g.Witness[tt+1]) {
				t.Fatalf("step %d: request %v != adversary pos %v", tt, req, g.Witness[tt+1])
			}
		}
	}
}

func TestTheorem3WitnessFeasible(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := Theorem3(Theorem3Params{T: 101, D: 3, M: 2, R: 4, Dim: 2}, xrand.New(seed))
		if !(g.WitnessCost().Total() > 0) {
			t.Fatal("witness cost not positive")
		}
	}
}

func TestTheorem3RatioGrowsWithR(t *testing.T) {
	ratioAt := func(R int) float64 {
		sum := 0.0
		n := 8
		for seed := 0; seed < n; seed++ {
			g := Theorem3(Theorem3Params{T: 200, D: 4, M: 1, R: R, Dim: 1}, xrand.New(uint64(seed)))
			res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
			sum += sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
		}
		return sum / float64(n)
	}
	small, large := ratioAt(1), ratioAt(16)
	if large < 3*small {
		t.Fatalf("Answer-First ratio did not grow with r: r=1 -> %v, r=16 -> %v", small, large)
	}
}

func TestTheorem8StructureAndFeasibility(t *testing.T) {
	g := Theorem8(Theorem8Params{T: 400, D: 1, MS: 1, Eps: 1, Dim: 1}, xrand.New(5))
	if err := g.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Instance.Config.MA != 2 {
		t.Fatalf("MA = %v, want (1+1)·1 = 2", g.Instance.Config.MA)
	}
	if !(g.WitnessCost() > 0) {
		t.Fatal("witness cost not positive")
	}
	// Witness walks m_s per round.
	for tt := 1; tt <= g.Instance.T(); tt++ {
		if d := geom.Dist(g.Witness[tt-1], g.Witness[tt]); d > 1+1e-12 {
			t.Fatalf("witness overspeed at %d: %v", tt, d)
		}
	}
}

func TestTheorem8AgentCatchesAdversary(t *testing.T) {
	g := Theorem8(Theorem8Params{T: 500, D: 1, MS: 1, Eps: 0.5, Dim: 1}, xrand.New(6))
	// In phase 2 the agent must coincide with the adversary's server.
	T := g.Instance.T()
	for tt := T / 2; tt < T; tt++ {
		if d := geom.Dist(g.Instance.Path[tt], g.Witness[tt+1]); d > 1e-9 {
			t.Fatalf("round %d: agent %v != adversary %v", tt, g.Instance.Path[tt], g.Witness[tt+1])
		}
	}
}

func TestTheorem8OnlineLagsBehind(t *testing.T) {
	// The unaugmented Follow algorithm must pay far more than the witness
	// on long sequences.
	g := Theorem8(Theorem8Params{T: 2500, D: 1, MS: 1, Eps: 1, Dim: 1}, xrand.New(8))
	res, err := sim.Run(g.Instance.ToCore(), agent.Adapt(g.Instance, agent.NewFollow()), sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := sim.Ratio(res.Cost.Total(), g.WitnessCost())
	if ratio < 3 {
		t.Fatalf("fast-agent ratio = %v, expected online to lag badly", ratio)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Theorem1(Theorem1Params{T: 50, D: 1, M: 1, Dim: 1}, xrand.New(9))
	b := Theorem1(Theorem1Params{T: 50, D: 1, M: 1, Dim: 1}, xrand.New(9))
	for tt := range a.Instance.Steps {
		if !a.Instance.Steps[tt].Requests[0].Equal(b.Instance.Steps[tt].Requests[0]) {
			t.Fatal("Theorem1 not deterministic")
		}
	}
	c := Theorem2(Theorem2Params{T: 60, Delta: 0.5, D: 1, M: 1, Rmin: 1, Rmax: 2}, xrand.New(10))
	d := Theorem2(Theorem2Params{T: 60, Delta: 0.5, D: 1, M: 1, Rmin: 1, Rmax: 2}, xrand.New(10))
	if c.Note != d.Note || len(c.Instance.Steps) != len(d.Instance.Steps) {
		t.Fatal("Theorem2 not deterministic")
	}
}

func TestTheorem1HigherDim(t *testing.T) {
	g := Theorem1(Theorem1Params{T: 64, D: 1, M: 1, Dim: 3}, xrand.New(11))
	if err := g.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Instance.Config.Dim != 3 {
		t.Fatal("dim not propagated")
	}
}
