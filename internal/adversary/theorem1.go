package adversary

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Theorem1Params configures the Ω(√T/D) construction against unaugmented
// online algorithms (Theorem 1 of the paper).
type Theorem1Params struct {
	// T is the sequence length.
	T int
	// D is the page weight.
	D float64
	// M is the movement cap m (shared: no augmentation in this theorem).
	M float64
	// Dim is the dimension; the construction moves along the first axis.
	Dim int
	// X is the length of the separation phase; 0 selects the paper's
	// choice x = round(√T).
	X int
}

func (p Theorem1Params) withDefaults() Theorem1Params {
	if p.Dim == 0 {
		p.Dim = 1
	}
	if p.M == 0 {
		p.M = 1
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.X == 0 {
		p.X = int(math.Round(math.Sqrt(float64(p.T))))
	}
	if p.X < 1 {
		p.X = 1
	}
	if p.X > p.T {
		p.X = p.T
	}
	return p
}

// Theorem1 builds the two-phase sequence of Theorem 1. Phase 1 (x steps):
// one request per step on the server's starting position, while the
// adversary walks distance m per step in a coin-flip direction. Phase 2
// (T−x steps): one request per step on the adversary's position, which
// keeps moving in the same direction. An online algorithm limited to speed
// m cannot close the expected gap of x·m, paying Θ(x·m) per remaining step.
func Theorem1(p Theorem1Params, r *xrand.Rand) Generated {
	p = p.withDefaults()
	if p.T < 1 {
		panic("adversary: Theorem1 requires T >= 1")
	}
	sign := r.Sign()
	step := axisStep(p.Dim, sign, p.M)

	start := geom.Zero(p.Dim)
	in := &core.Instance{
		Config: core.Config{Dim: p.Dim, D: p.D, M: p.M, Delta: 0, Order: core.MoveFirst},
		Start:  start,
		Steps:  make([]core.Step, p.T),
	}
	witness := make([]geom.Point, p.T+1)
	witness[0] = start.Clone()
	pos := start.Clone()
	for t := 1; t <= p.T; t++ {
		pos = pos.Add(step)
		witness[t] = pos.Clone()
		var req geom.Point
		if t <= p.X {
			req = start.Clone()
		} else {
			req = pos.Clone()
		}
		in.Steps[t-1] = core.Step{Requests: []geom.Point{req}}
	}
	return Generated{
		Instance: in,
		Witness:  witness,
		Note:     fmt.Sprintf("Theorem1(T=%d, D=%g, m=%g, x=%d, dir=%+g)", p.T, p.D, p.M, p.X, sign),
	}
}
