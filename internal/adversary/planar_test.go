package adversary

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestPlanarStructure(t *testing.T) {
	for _, style := range []PlanarStyle{StyleRandomDir, StyleZigzag, StylePerpOffset} {
		g := Planar(PlanarParams{T: 300, D: 1, M: 1, Delta: 0.5, Style: style}, xrand.New(1))
		if err := g.Instance.Validate(); err != nil {
			t.Fatalf("%s: %v", style, err)
		}
		if g.Instance.Config.Dim != 2 {
			t.Fatalf("%s: dim = %d", style, g.Instance.Config.Dim)
		}
		if g.Instance.T() != 300 {
			t.Fatalf("%s: T = %d", style, g.Instance.T())
		}
	}
}

func TestPlanarWitnessFeasible(t *testing.T) {
	for _, style := range []PlanarStyle{StyleRandomDir, StyleZigzag, StylePerpOffset} {
		for _, delta := range []float64{1, 0.25, 0.0625} {
			g := Planar(PlanarParams{T: 500, D: 2, M: 1, Delta: delta, Style: style}, xrand.New(2))
			if c := g.WitnessCost(); !(c.Total() > 0) {
				t.Fatalf("%s δ=%v: witness cost %v", style, delta, c)
			}
		}
	}
}

func TestPlanarWitnessSpeed(t *testing.T) {
	g := Planar(PlanarParams{T: 400, D: 1, M: 0.5, Delta: 0.25, Style: StyleZigzag}, xrand.New(3))
	for i := 1; i < len(g.Witness); i++ {
		if d := geom.Dist(g.Witness[i-1], g.Witness[i]); d > 0.5*(1+1e-9) {
			t.Fatalf("witness overspeed %v at %d", d, i)
		}
	}
}

func TestPlanarZigzagTurnsPerpendicular(t *testing.T) {
	// The zigzag style must rotate the escape direction by exactly 90°
	// between cycles: consecutive cycle displacement vectors are
	// orthogonal.
	p := PlanarParams{T: 2000, D: 1, M: 1, Delta: 0.5, X: 4}
	p.Style = StyleZigzag
	g := Planar(p, xrand.New(4))
	// Cycle length = x + ceil(x/δ) = 4 + 8 = 12 steps.
	cycle := 12
	w := g.Witness
	var dirs []geom.Point
	for start := 0; start+cycle < len(w)-1; start += cycle {
		dirs = append(dirs, w[start+1].Sub(w[start]))
	}
	for i := 1; i < len(dirs); i++ {
		if dot := dirs[i-1].Dot(dirs[i]); math.Abs(dot) > 1e-9 {
			t.Fatalf("cycle %d: directions not perpendicular (dot=%v)", i, dot)
		}
	}
}

func TestPlanarPerpOffsetShrinks(t *testing.T) {
	// In the perp-offset style, phase-B requests start far from the
	// witness and converge onto it by the end of the phase.
	p := PlanarParams{T: 60, D: 1, M: 1, Delta: 0.25, X: 4, Style: StylePerpOffset}
	g := Planar(p, xrand.New(5))
	// Cycle: 4 + 16 = 20 steps; phase B spans steps 4..19 of the cycle.
	first := geom.Dist(g.Instance.Steps[4].Requests[0], g.Witness[5])
	last := geom.Dist(g.Instance.Steps[19].Requests[0], g.Witness[20])
	if first <= last {
		t.Fatalf("perp offset did not shrink: first %v, last %v", first, last)
	}
	if first == 0 {
		t.Fatal("perp offset absent at phase-B start")
	}
}

func TestPlanarRatioGrowsAsDeltaShrinks(t *testing.T) {
	ratioAt := func(delta float64) float64 {
		sum := 0.0
		n := 6
		for seed := 0; seed < n; seed++ {
			x := int(math.Ceil(2 / delta))
			T := 3 * (x + int(math.Ceil(float64(x)/delta)))
			g := Planar(PlanarParams{T: T, D: 1, M: 1, Delta: delta, Style: StyleRandomDir}, xrand.New(uint64(seed)))
			res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
			sum += sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
		}
		return sum / float64(n)
	}
	loose, tight := ratioAt(0.5), ratioAt(0.125)
	if tight < 1.5*loose {
		t.Fatalf("planar ratio did not grow as δ shrank: %v -> %v", loose, tight)
	}
}

func TestPlanarPanics(t *testing.T) {
	for name, p := range map[string]PlanarParams{
		"zero T":    {T: 0, Delta: 0.5},
		"bad delta": {T: 10, Delta: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Planar(p, xrand.New(1))
		}()
	}
}

func TestPlanarStyleString(t *testing.T) {
	if StyleRandomDir.String() != "random-dir" || StyleZigzag.String() != "zigzag" || StylePerpOffset.String() != "perp-offset" {
		t.Fatal("style names wrong")
	}
	if PlanarStyle(9).String() == "" {
		t.Fatal("unknown style should still render")
	}
}
