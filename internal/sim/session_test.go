package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// stepLoop replays the instance through the streaming Session API.
func stepLoop(t *testing.T, in *core.Instance, alg core.Algorithm, opts RunOptions) *Result {
	t.Helper()
	s, err := NewSession(in.Config, in.Start, alg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range in.Steps {
		if err := s.Step(step.Requests); err != nil {
			t.Fatal(err)
		}
	}
	return s.Finish()
}

func TestRunEqualsStepLoop(t *testing.T) {
	// Acceptance: Run must produce byte-identical Results to an
	// incremental Step loop on the same instance, with and without trace.
	cfg := core.Config{Dim: 2, D: 3, M: 1, Delta: 0.5, Order: core.MoveFirst}
	in := workload.Hotspot{Half: 10, Sigma: 1}.Generate(xrand.New(7), cfg, 300)
	for _, trace := range []bool{false, true} {
		opts := RunOptions{RecordTrace: trace}
		a, err := Run(in, core.NewMtC(), opts)
		if err != nil {
			t.Fatal(err)
		}
		b := stepLoop(t, in, core.NewMtC(), opts)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trace=%v: Run result differs from Step loop:\n%+v\nvs\n%+v", trace, a, b)
		}
	}
}

func TestRunEqualsStepLoopAnswerFirst(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.25, Order: core.AnswerFirst}
	in := workload.Hotspot{Half: 8, Sigma: 1}.Generate(xrand.New(9), cfg, 200)
	a := MustRun(in, core.NewMtC(), RunOptions{})
	b := stepLoop(t, in, core.NewMtC(), RunOptions{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run result differs from Step loop:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSessionClampCountsSteps(t *testing.T) {
	// Clamp semantics through the session API: every over-cap step is
	// clamped onto the cap sphere and counted, and the equivalent Run
	// agrees exactly.
	in := lineInstance(0, 100, 100, 0.5, 100)
	opts := RunOptions{Mode: Clamp}
	s, err := NewSession(in.Config, in.Start, &jumpAlg{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range in.Steps {
		before := s.T()
		if err := s.Step(step.Requests); err != nil {
			t.Fatal(err)
		}
		if s.T() != before+1 {
			t.Fatalf("T did not advance: %d -> %d", before, s.T())
		}
	}
	res := s.Finish()
	// Steps 1 and 2 jump by ~100 and ~99 (clamped); step 3 targets 0.5
	// from position 2 (distance 1.5 > cap 1, clamped); step 4 jumps far
	// again. All four clamp except none are within cap.
	if res.Clamped != 4 {
		t.Fatalf("Clamped = %d, want 4", res.Clamped)
	}
	if res.MaxMove > in.Config.OnlineCap()*(1+1e-9) {
		t.Fatalf("clamped session still moved %v", res.MaxMove)
	}
	runRes := MustRun(in, &jumpAlg{}, opts)
	if !reflect.DeepEqual(res, runRes) {
		t.Fatalf("session clamp result differs from Run:\n%+v\nvs\n%+v", res, runRes)
	}
}

func TestSessionObserverOrdering(t *testing.T) {
	// Observers fire in registration order on every step, and the
	// RecordTrace recorder runs after user observers.
	var log []string
	obsA := engine.Func(func(info engine.StepInfo) {
		log = append(log, fmt.Sprintf("a%d", info.T))
	})
	obsB := engine.Func(func(info engine.StepInfo) {
		log = append(log, fmt.Sprintf("b%d", info.T))
	})
	in := lineInstance(0, 1, 2, 3)
	res, err := Run(in, core.NewMtC(), RunOptions{Observers: []Observer{obsA, obsB}, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("observer order = %v, want %v", log, want)
	}
	if len(res.Trace) != 3 {
		t.Fatalf("trace length = %d alongside observers", len(res.Trace))
	}
}

func TestSessionObserverSeesCostsAndPositions(t *testing.T) {
	in := lineInstance(0, 5, 5, 5)
	var sum core.Cost
	var lastPos geom.Point
	obs := engine.Func(func(info engine.StepInfo) {
		sum = sum.Add(info.Cost)
		lastPos = info.Pos[0].Clone()
	})
	res, err := Run(in, core.NewMtC(), RunOptions{Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if sum != res.Cost {
		t.Fatalf("observed cost %v != result cost %v", sum, res.Cost)
	}
	if !lastPos.Equal(res.Final) {
		t.Fatalf("observed final %v != result final %v", lastPos, res.Final)
	}
}

func TestSessionStepAfterFinish(t *testing.T) {
	s, err := NewSession(core.Config{Dim: 1, D: 1, M: 1}, pt(0), core.NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]geom.Point{pt(1)}); err != nil {
		t.Fatal(err)
	}
	_ = s.Finish()
	if err := s.Step([]geom.Point{pt(2)}); err == nil {
		t.Fatal("Step accepted after Finish")
	}
}

func TestSessionRejectsBadRequests(t *testing.T) {
	s, err := NewSession(core.Config{Dim: 2, D: 1, M: 1}, pt(0, 0), core.NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]geom.Point{pt(1)}); err == nil {
		t.Fatal("wrong-dimension request accepted")
	}
}

func TestSessionStreamingWithoutInstance(t *testing.T) {
	// Drive a session from a generator loop: no Instance is ever built,
	// the per-step batch buffer is reused, and the result matches the
	// materialized run of the same stream.
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst}
	gen := func(t int) float64 { return float64(t % 40) }
	const T = 500

	s, err := NewSession(cfg, pt(0), core.NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]geom.Point, 1)
	req := geom.NewPoint(0)
	for i := 0; i < T; i++ {
		req[0] = gen(i)
		batch[0] = req
		if err := s.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	streamed := s.Finish()

	in := &core.Instance{Config: cfg, Start: pt(0)}
	for i := 0; i < T; i++ {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{pt(gen(i))}})
	}
	batched := MustRun(in, core.NewMtC(), RunOptions{})
	if !reflect.DeepEqual(streamed, batched) {
		t.Fatalf("streamed result differs from batched:\n%+v\nvs\n%+v", streamed, batched)
	}
}
