package sim

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// Parallel runs fn for indices 0..n-1 on a fixed worker pool and returns
// the results in index order. Each invocation receives its own
// deterministic random stream derived from (seed, index), so the output is
// identical regardless of GOMAXPROCS or scheduling.
//
// This is the concurrency backbone of the experiment harness: every
// (parameter point × repetition) of a sweep is one job.
func Parallel[T any](n int, seed uint64, fn func(i int, r *xrand.Rand) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(i, xrand.NewStream(seed, uint64(i)))
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// ParallelErr is Parallel for job functions that can fail. It runs all jobs
// to completion and returns the first error by index order (deterministic),
// alongside all successful results.
func ParallelErr[T any](n int, seed uint64, fn func(i int, r *xrand.Rand) (T, error)) ([]T, error) {
	type slot struct {
		val T
		err error
	}
	slots := Parallel(n, seed, func(i int, r *xrand.Rand) slot {
		v, err := fn(i, r)
		return slot{val: v, err: err}
	})
	out := make([]T, n)
	var firstErr error
	for i, s := range slots {
		out[i] = s.val
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	return out, firstErr
}
