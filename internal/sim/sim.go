// Package sim executes online algorithms on single-server Mobile Server
// instances and provides a deterministic parallel batch runner for
// experiments. It is a thin single-server facade over the streaming
// engine: Run drives a Session over a materialized Instance, and Session
// exposes the same step-by-step API for live request streams.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

// Mode selects how cap violations by an algorithm are handled.
type Mode = engine.Mode

const (
	// Strict aborts the run with an error when the algorithm attempts to
	// move farther than its cap (plus tolerance). This is the default: a
	// violation is a bug in the algorithm.
	Strict = engine.Strict
	// Clamp projects an over-long move back onto the cap sphere around
	// the previous position and continues.
	Clamp = engine.Clamp
)

// Observer is re-exported from the engine for convenience: per-step hooks
// that replace hard-coded instrumentation.
type Observer = engine.Observer

// RunOptions configures a single simulation run. The zero value gives
// strict cap checking with the default tolerance, no trace, and no
// observers.
type RunOptions struct {
	Mode Mode
	// Tol is the relative tolerance for cap checks. Default 1e-9.
	Tol float64
	// RecordTrace stores the per-step positions and costs in the result.
	// It is implemented as an internal observer appended after Observers.
	RecordTrace bool
	// Observers are notified after every step, in order.
	Observers []Observer
}

// StepRecord is one entry of an optional run trace.
type StepRecord struct {
	// Pos is the server position after the move of this step.
	Pos geom.Point
	// Cost is the cost charged in this step.
	Cost core.Cost
}

// Result summarizes a completed run.
type Result struct {
	// Algorithm is the algorithm's reported name.
	Algorithm string
	// Cost is the accumulated total cost.
	Cost core.Cost
	// Final is the server's final position.
	Final geom.Point
	// MaxMove is the largest single-step movement observed.
	MaxMove float64
	// Clamped counts steps on which the cap had to be enforced (Clamp
	// mode only).
	Clamped int
	// Trace holds per-step records when RunOptions.RecordTrace is set.
	Trace []StepRecord
}

// traceRecorder is the observer behind RunOptions.RecordTrace.
type traceRecorder struct {
	records []StepRecord
}

func (tr *traceRecorder) Observe(info engine.StepInfo) {
	tr.records = append(tr.records, StepRecord{Pos: info.Pos[0].Clone(), Cost: info.Cost})
}

// Session is an in-progress single-server simulation: feed it one request
// batch per time step with Step, then call Finish for the Result. Run is
// equivalent to a Session stepped over an instance.
type Session struct {
	inner *engine.Session
	trace *traceRecorder
}

// engineOptions assembles the engine options, appending the internal trace
// recorder after any user observers when RecordTrace is set.
func (o RunOptions) engineOptions() (engine.Options, *traceRecorder) {
	obs := o.Observers
	var tr *traceRecorder
	if o.RecordTrace {
		tr = &traceRecorder{}
		obs = append(append([]Observer{}, o.Observers...), tr)
	}
	return engine.Options{Mode: o.Mode, Tol: o.Tol, Observers: obs}, tr
}

// resultFromEngine converts a K=1 engine result to the single-server form.
func resultFromEngine(er *engine.Result, tr *traceRecorder) *Result {
	res := &Result{
		Algorithm: er.Algorithm,
		Cost:      er.Cost,
		Final:     er.Final[0],
		MaxMove:   er.MaxMove,
		Clamped:   er.Clamped,
	}
	if tr != nil {
		res.Trace = tr.records
	}
	return res
}

// NewSession starts a streaming run of the algorithm from the given start
// position. The movement cap applied is cfg.OnlineCap() = (1+δ)m.
func NewSession(cfg core.Config, start geom.Point, alg core.Algorithm, opts RunOptions) (*Session, error) {
	eopts, tr := opts.engineOptions()
	inner, err := engine.NewSingleSession(cfg, start, alg, eopts)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner, trace: tr}, nil
}

// T returns the number of steps fed so far.
func (s *Session) T() int { return s.inner.T() }

// Position returns a copy of the server's current position.
func (s *Session) Position() geom.Point { return s.inner.Position(0) }

// Step feeds one time step's request batch (which may be empty).
func (s *Session) Step(requests []geom.Point) error { return s.inner.Step(requests) }

// Finish closes the session and returns the accumulated result.
func (s *Session) Finish() *Result {
	return resultFromEngine(s.inner.Finish(), s.trace)
}

// Snapshot serializes the in-progress session (position, accumulated cost,
// step counter, algorithm state) for checkpoint/resume; see
// engine.Session.Snapshot. The trace, if any, is not part of the snapshot.
func (s *Session) Snapshot() ([]byte, error) { return s.inner.Snapshot() }

// RestoreSession reopens a single-server session from bytes produced by
// Session.Snapshot, continuing the run exactly where the snapshot was
// taken. Pass a fresh algorithm instance of the same kind and the original
// configuration; see engine.Restore for the contract.
func RestoreSession(cfg core.Config, alg core.Algorithm, data []byte, opts RunOptions) (*Session, error) {
	eopts, tr := opts.engineOptions()
	inner, err := engine.Restore(cfg, core.Fleet(alg), data, eopts)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner, trace: tr}, nil
}

// Run executes the algorithm on the instance under the instance's
// configuration by driving an engine session over its steps (the instance
// is validated once up front, not per step). The movement cap applied is
// cfg.OnlineCap() = (1+δ)m.
func Run(in *core.Instance, alg core.Algorithm, opts RunOptions) (*Result, error) {
	eopts, tr := opts.engineOptions()
	er, err := engine.Run(in.Fleet(), core.Fleet(alg), eopts)
	if err != nil {
		return nil, err
	}
	return resultFromEngine(er, tr), nil
}

// MustRun is Run for tests and examples where an error is fatal by design.
// It panics on error.
func MustRun(in *core.Instance, alg core.Algorithm, opts RunOptions) *Result {
	res, err := Run(in, alg, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// CheckFeasible verifies that a full trajectory (positions[0..T], with
// positions[0] == in.Start) respects the given per-step movement cap within
// relative tolerance tol. It returns the trajectory cost on success.
func CheckFeasible(in *core.Instance, positions []geom.Point, cap, tol float64) (core.Cost, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	if len(positions) != in.T()+1 {
		return core.Cost{}, fmt.Errorf("sim: trajectory has %d positions, want %d", len(positions), in.T()+1)
	}
	for t := 1; t < len(positions); t++ {
		moved := geom.Dist(positions[t-1], positions[t])
		if moved > cap*(1+tol) {
			return core.Cost{}, fmt.Errorf("sim: trajectory moves %.12g > cap %.12g at step %d", moved, cap, t-1)
		}
	}
	return core.TrajectoryCost(in, positions)
}

// Ratio returns alg/opt with guards: it returns NaN when opt is not
// positive (a zero-cost optimum makes the competitive ratio meaningless for
// a single instance).
func Ratio(alg, opt float64) float64 {
	if !(opt > 0) {
		return math.NaN()
	}
	return alg / opt
}
