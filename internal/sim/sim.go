// Package sim executes online algorithms on Mobile Server instances,
// enforcing the per-step movement cap and accounting costs, and provides a
// deterministic parallel batch runner for experiments.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Mode selects how cap violations by an algorithm are handled.
type Mode int

const (
	// Strict aborts the run with an error when the algorithm attempts to
	// move farther than its cap (plus tolerance). This is the default: a
	// violation is a bug in the algorithm.
	Strict Mode = iota
	// Clamp projects an over-long move back onto the cap sphere around
	// the previous position and continues.
	Clamp
)

// RunOptions configures a single simulation run. The zero value gives
// strict cap checking with the default tolerance and no trace.
type RunOptions struct {
	Mode Mode
	// Tol is the relative tolerance for cap checks. Default 1e-9.
	Tol float64
	// RecordTrace stores the per-step positions and costs in the result.
	RecordTrace bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// StepRecord is one entry of an optional run trace.
type StepRecord struct {
	// Pos is the server position after the move of this step.
	Pos geom.Point
	// Cost is the cost charged in this step.
	Cost core.Cost
}

// Result summarizes a completed run.
type Result struct {
	// Algorithm is the algorithm's reported name.
	Algorithm string
	// Cost is the accumulated total cost.
	Cost core.Cost
	// Final is the server's final position.
	Final geom.Point
	// MaxMove is the largest single-step movement observed.
	MaxMove float64
	// Clamped counts steps on which the cap had to be enforced (Clamp
	// mode only).
	Clamped int
	// Trace holds per-step records when RunOptions.RecordTrace is set.
	Trace []StepRecord
}

// Run executes the algorithm on the instance under the instance's
// configuration. The movement cap applied is cfg.OnlineCap() = (1+δ)m.
func Run(in *core.Instance, alg core.Algorithm, opts RunOptions) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	cfg := in.Config
	cap := cfg.OnlineCap()
	alg.Reset(cfg, in.Start)

	res := &Result{Algorithm: alg.Name(), Final: in.Start.Clone()}
	if o.RecordTrace {
		res.Trace = make([]StepRecord, 0, in.T())
	}
	pos := in.Start.Clone()
	for t, step := range in.Steps {
		next := alg.Move(step.Requests)
		if next.Dim() != cfg.Dim {
			return nil, fmt.Errorf("sim: %s returned dim-%d point in dim-%d space at step %d", alg.Name(), next.Dim(), cfg.Dim, t)
		}
		if !next.IsFinite() {
			return nil, fmt.Errorf("sim: %s returned non-finite position %v at step %d", alg.Name(), next, t)
		}
		moved := geom.Dist(pos, next)
		if moved > cap*(1+o.Tol) {
			switch o.Mode {
			case Strict:
				return nil, fmt.Errorf("sim: %s moved %.12g > cap %.12g at step %d", alg.Name(), moved, cap, t)
			case Clamp:
				next = geom.MoveToward(pos, next, cap)
				moved = geom.Dist(pos, next)
				res.Clamped++
			}
		}
		if moved > res.MaxMove {
			res.MaxMove = moved
		}
		sc := core.StepCost(cfg, pos, next, step.Requests)
		res.Cost = res.Cost.Add(sc)
		pos = next.Clone()
		if o.RecordTrace {
			res.Trace = append(res.Trace, StepRecord{Pos: pos.Clone(), Cost: sc})
		}
	}
	res.Final = pos
	return res, nil
}

// MustRun is Run for tests and examples where an error is fatal by design.
// It panics on error.
func MustRun(in *core.Instance, alg core.Algorithm, opts RunOptions) *Result {
	res, err := Run(in, alg, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// CheckFeasible verifies that a full trajectory (positions[0..T], with
// positions[0] == in.Start) respects the given per-step movement cap within
// relative tolerance tol. It returns the trajectory cost on success.
func CheckFeasible(in *core.Instance, positions []geom.Point, cap, tol float64) (core.Cost, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	if len(positions) != in.T()+1 {
		return core.Cost{}, fmt.Errorf("sim: trajectory has %d positions, want %d", len(positions), in.T()+1)
	}
	for t := 1; t < len(positions); t++ {
		moved := geom.Dist(positions[t-1], positions[t])
		if moved > cap*(1+tol) {
			return core.Cost{}, fmt.Errorf("sim: trajectory moves %.12g > cap %.12g at step %d", moved, cap, t-1)
		}
	}
	return core.TrajectoryCost(in, positions)
}

// Ratio returns alg/opt with guards: it returns NaN when opt is not
// positive (a zero-cost optimum makes the competitive ratio meaningless for
// a single instance).
func Ratio(alg, opt float64) float64 {
	if !(opt > 0) {
		return math.NaN()
	}
	return alg / opt
}
