package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func lineInstance(start float64, reqs ...float64) *core.Instance {
	in := &core.Instance{
		Config: core.Config{Dim: 1, D: 1, M: 1, Delta: 0, Order: core.MoveFirst},
		Start:  pt(start),
	}
	for _, v := range reqs {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{pt(v)}})
	}
	return in
}

// stayAlg never moves.
type stayAlg struct{ core.PositionTracker }

func (s *stayAlg) Name() string                   { return "stay" }
func (s *stayAlg) Move(_ []geom.Point) geom.Point { return s.Pos }

// jumpAlg ignores the cap and jumps straight to the first request.
type jumpAlg struct{ core.PositionTracker }

func (j *jumpAlg) Name() string { return "jump" }
func (j *jumpAlg) Move(reqs []geom.Point) geom.Point {
	if len(reqs) > 0 {
		j.Pos = reqs[0].Clone()
	}
	return j.Pos
}

func TestRunStayCosts(t *testing.T) {
	in := lineInstance(0, 1, 2, 3)
	res, err := Run(in, &stayAlg{}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Move != 0 {
		t.Fatalf("stay paid movement: %v", res.Cost.Move)
	}
	if res.Cost.Serve != 1+2+3 {
		t.Fatalf("Serve = %v, want 6", res.Cost.Serve)
	}
	if !res.Final.Equal(pt(0.0)) {
		t.Fatalf("Final = %v", res.Final)
	}
	if res.MaxMove != 0 {
		t.Fatalf("MaxMove = %v", res.MaxMove)
	}
}

func TestRunMtCOnLine(t *testing.T) {
	in := lineInstance(0, 5, 5, 5, 5, 5, 5)
	res, err := Run(in, core.NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// MtC with r=1, D=1 moves full speed but capped at m=1 per step:
	// positions 1,2,3,4,5,5. Serve: 4+3+2+1+0+0 = 10. Move: 5 steps of 1.
	if math.Abs(res.Cost.Move-5) > 1e-9 {
		t.Fatalf("Move = %v, want 5", res.Cost.Move)
	}
	if math.Abs(res.Cost.Serve-10) > 1e-9 {
		t.Fatalf("Serve = %v, want 10", res.Cost.Serve)
	}
	if !res.Final.ApproxEqual(pt(5.0), 1e-9) {
		t.Fatalf("Final = %v", res.Final)
	}
}

func TestRunStrictRejectsCapViolation(t *testing.T) {
	in := lineInstance(0, 100)
	_, err := Run(in, &jumpAlg{}, RunOptions{Mode: Strict})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("expected cap violation error, got %v", err)
	}
}

func TestRunClampEnforcesCap(t *testing.T) {
	in := lineInstance(0, 100, 100)
	res, err := Run(in, &jumpAlg{}, RunOptions{Mode: Clamp})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clamped == 0 {
		t.Fatal("Clamped not counted")
	}
	if res.MaxMove > in.Config.OnlineCap()*(1+1e-9) {
		t.Fatalf("clamped run still moved %v", res.MaxMove)
	}
}

func TestRunClampKeepsDirection(t *testing.T) {
	in := lineInstance(0, 100)
	res, err := Run(in, &jumpAlg{}, RunOptions{Mode: Clamp})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.ApproxEqual(pt(1.0), 1e-9) {
		t.Fatalf("clamped final = %v, want 1", res.Final)
	}
}

func TestRunAnswerFirstCosts(t *testing.T) {
	in := lineInstance(0, 5)
	in.Config.Order = core.AnswerFirst
	res, err := Run(in, core.NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Serve from start (0): cost 5. Then move 1 (cap).
	if math.Abs(res.Cost.Serve-5) > 1e-9 || math.Abs(res.Cost.Move-1) > 1e-9 {
		t.Fatalf("answer-first cost = %+v", res.Cost)
	}
}

func TestRunTrace(t *testing.T) {
	in := lineInstance(0, 1, 2)
	res, err := Run(in, core.NewMtC(), RunOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
	var sum core.Cost
	for _, rec := range res.Trace {
		sum = sum.Add(rec.Cost)
	}
	if math.Abs(sum.Total()-res.Cost.Total()) > 1e-9 {
		t.Fatalf("trace costs %v != total %v", sum.Total(), res.Cost.Total())
	}
	if !res.Trace[len(res.Trace)-1].Pos.Equal(res.Final) {
		t.Fatal("last trace position != final")
	}
}

func TestRunRejectsInvalidInstance(t *testing.T) {
	in := lineInstance(0)
	if _, err := Run(in, core.NewMtC(), RunOptions{}); err == nil {
		t.Fatal("empty instance accepted")
	}
}

// badDimAlg returns a point of the wrong dimension.
type badDimAlg struct{ core.PositionTracker }

func (b *badDimAlg) Name() string                   { return "baddim" }
func (b *badDimAlg) Move(_ []geom.Point) geom.Point { return geom.NewPoint(1, 2, 3) }

func TestRunRejectsWrongDim(t *testing.T) {
	in := lineInstance(0, 1)
	if _, err := Run(in, &badDimAlg{}, RunOptions{}); err == nil {
		t.Fatal("wrong-dimension move accepted")
	}
}

// nanAlg returns a non-finite position.
type nanAlg struct{ core.PositionTracker }

func (b *nanAlg) Name() string                   { return "nan" }
func (b *nanAlg) Move(_ []geom.Point) geom.Point { return geom.NewPoint(math.NaN()) }

func TestRunRejectsNaN(t *testing.T) {
	in := lineInstance(0, 1)
	if _, err := Run(in, &nanAlg{}, RunOptions{}); err == nil {
		t.Fatal("NaN move accepted")
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on error")
		}
	}()
	MustRun(lineInstance(0), core.NewMtC(), RunOptions{})
}

func TestCheckFeasible(t *testing.T) {
	in := lineInstance(0, 1, 2)
	good := []geom.Point{pt(0.0), pt(1.0), pt(2.0)}
	c, err := CheckFeasible(in, good, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Total()-2) > 1e-9 { // moves 1+1, serves 0+0
		t.Fatalf("feasible cost = %v", c.Total())
	}
	bad := []geom.Point{pt(0.0), pt(5.0), pt(2.0)}
	if _, err := CheckFeasible(in, bad, 1, 0); err == nil {
		t.Fatal("infeasible trajectory accepted")
	}
	short := []geom.Point{pt(0.0)}
	if _, err := CheckFeasible(in, short, 1, 0); err == nil {
		t.Fatal("short trajectory accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 2) != 3 {
		t.Fatalf("Ratio = %v", Ratio(6, 2))
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("Ratio with zero OPT should be NaN")
	}
	if !math.IsNaN(Ratio(1, -2)) {
		t.Fatal("Ratio with negative OPT should be NaN")
	}
}

func TestRunDeterministic(t *testing.T) {
	in := lineInstance(0, 3, -4, 7, 2, 2, 9)
	a := MustRun(in, core.NewMtC(), RunOptions{})
	b := MustRun(in, core.NewMtC(), RunOptions{})
	if a.Cost != b.Cost || !a.Final.Equal(b.Final) {
		t.Fatal("identical runs differ")
	}
}
