package sim

import (
	"errors"
	"testing"

	"repro/internal/xrand"
)

func TestParallelOrderAndCompleteness(t *testing.T) {
	got := Parallel(100, 1, func(i int, _ *xrand.Rand) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	f := func() []float64 {
		return Parallel(64, 99, func(i int, r *xrand.Rand) float64 { return r.Float64() })
	}
	a, b := f(), f()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelStreamsDiffer(t *testing.T) {
	vals := Parallel(32, 5, func(i int, r *xrand.Rand) uint64 { return r.Uint64() })
	seen := map[uint64]bool{}
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate stream output %d", v)
		}
		seen[v] = true
	}
}

func TestParallelZeroJobs(t *testing.T) {
	got := Parallel(0, 1, func(i int, _ *xrand.Rand) int { return i })
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestParallelSingleJob(t *testing.T) {
	got := Parallel(1, 1, func(i int, _ *xrand.Rand) string { return "x" })
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestParallelErrCollects(t *testing.T) {
	sentinel := errors.New("boom")
	vals, err := ParallelErr(10, 1, func(i int, _ *xrand.Rand) (int, error) {
		if i == 7 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if vals[3] != 3 {
		t.Fatal("successful results lost")
	}
}

func TestParallelErrFirstByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := ParallelErr(10, 1, func(i int, _ *xrand.Rand) (int, error) {
		switch i {
		case 2:
			return 0, errA
		case 8:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("expected first error by index, got %v", err)
	}
}

func TestParallelErrNilOnSuccess(t *testing.T) {
	vals, err := ParallelErr(5, 1, func(i int, _ *xrand.Rand) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Fatalf("len = %d", len(vals))
	}
}
