// Package geom implements dimension-generic Euclidean geometry for the
// Mobile Server Problem: points in ℝ^d, distances, bounded movement,
// segments, lines, collinearity tests, and bounding boxes.
//
// All positions in the repository are geom.Point values. A Point is a slice
// of coordinates; operations never mutate their receivers unless the method
// name says so, and mixed-dimension arguments panic, since a dimension
// mismatch is always a programming error in this domain.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point (or displacement vector) in d-dimensional Euclidean
// space. The zero-length Point is invalid; constructors always produce at
// least one coordinate.
type Point []float64

// NewPoint returns a point with the given coordinates. It panics if no
// coordinates are given.
func NewPoint(coords ...float64) Point {
	if len(coords) == 0 {
		panic("geom: NewPoint requires at least one coordinate")
	}
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Zero returns the origin of ℝ^d. It panics if d < 1.
func Zero(d int) Point {
	if d < 1 {
		panic("geom: Zero requires dimension >= 1")
	}
	return make(Point, d)
}

// Dim returns the dimension of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// assertSameDim panics when p and q live in different spaces.
func assertSameDim(p, q Point) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	assertSameDim(p, q)
	out := make(Point, len(p))
	for i := range p {
		out[i] = p[i] + q[i]
	}
	return out
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	assertSameDim(p, q)
	out := make(Point, len(p))
	for i := range p {
		out[i] = p[i] - q[i]
	}
	return out
}

// Scale returns s·p.
func (p Point) Scale(s float64) Point {
	out := make(Point, len(p))
	for i := range p {
		out[i] = s * p[i]
	}
	return out
}

// Dot returns the inner product ⟨p, q⟩.
func (p Point) Dot(q Point) float64 {
	assertSameDim(p, q)
	s := 0.0
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.NormSq()) }

// NormSq returns the squared Euclidean length of p.
func (p Point) NormSq() float64 {
	s := 0.0
	for _, v := range p {
		s += v * v
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Sqrt(DistSq(p, q)) }

// DistSq returns the squared Euclidean distance between p and q.
func DistSq(p, q Point) float64 {
	assertSameDim(p, q)
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Lerp returns the point (1-t)·p + t·q. t is not clamped.
func Lerp(p, q Point, t float64) Point {
	assertSameDim(p, q)
	out := make(Point, len(p))
	for i := range p {
		out[i] = p[i] + t*(q[i]-p[i])
	}
	return out
}

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Lerp(p, q, 0.5) }

// MoveToward returns the point reached by starting at p and moving straight
// toward target by at most step. If step >= Dist(p, target) the result is
// target itself (never overshooting), and a non-positive step returns p.
func MoveToward(p, target Point, step float64) Point {
	assertSameDim(p, target)
	if step <= 0 {
		return p.Clone()
	}
	d := Dist(p, target)
	if d <= step || d == 0 {
		return target.Clone()
	}
	return Lerp(p, target, step/d)
}

// CopyInto copies src into dst, growing dst when its capacity is short,
// and returns the destination. It is the allocation-free Clone used by the
// serving hot path's reusable buffers.
func CopyInto(dst, src Point) Point {
	if cap(dst) < len(src) {
		dst = make(Point, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// LerpInto writes Lerp(p, q, t) into dst (grown as needed) and returns it.
// dst may alias p or q: each coordinate is read before it is written. The
// arithmetic matches Lerp exactly, so results are bit-identical.
func LerpInto(dst, p, q Point, t float64) Point {
	assertSameDim(p, q)
	if cap(dst) < len(p) {
		dst = make(Point, len(p))
	}
	dst = dst[:len(p)]
	for i := range p {
		dst[i] = p[i] + t*(q[i]-p[i])
	}
	return dst
}

// MoveTowardInto writes MoveToward(p, target, step) into dst (grown as
// needed) and returns it; dst may alias p or target. The arithmetic
// matches MoveToward exactly, so results are bit-identical.
func MoveTowardInto(dst, p, target Point, step float64) Point {
	assertSameDim(p, target)
	if step <= 0 {
		return CopyInto(dst, p)
	}
	d := Dist(p, target)
	if d <= step || d == 0 {
		return CopyInto(dst, target)
	}
	return LerpInto(dst, p, target, step/d)
}

// Unit returns p normalized to length 1. It panics on the zero vector.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		panic("geom: Unit of zero vector")
	}
	return p.Scale(1 / n)
}

// Equal reports whether p and q agree exactly in every coordinate.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether p and q agree within absolute tolerance tol
// in every coordinate.
func (p Point) ApproxEqual(q Point, tol float64) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Abs(p[i]-q[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether all coordinates are finite (no NaN or Inf).
func (p Point) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the point as "(x1, x2, ...)" with compact formatting.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Centroid returns the arithmetic mean of the given points. It panics on an
// empty slice or mixed dimensions.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	sum := Zero(pts[0].Dim())
	for _, p := range pts {
		assertSameDim(sum, p)
		for i := range sum {
			sum[i] += p[i]
		}
	}
	return sum.Scale(1 / float64(len(pts)))
}

// SumDist returns Σ_i Dist(c, pts[i]), the objective minimized by the
// geometric median.
func SumDist(c Point, pts []Point) float64 {
	s := 0.0
	for _, p := range pts {
		s += Dist(c, p)
	}
	return s
}
