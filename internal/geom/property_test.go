package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randPoint draws a point in [-scale, scale]^d.
func randPoint(r *xrand.Rand, d int, scale float64) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = r.Range(-scale, scale)
	}
	return p
}

// TestMetricAxioms verifies symmetry, identity, and the triangle
// inequality of Dist on random triples in dimensions 1..4.
func TestMetricAxioms(t *testing.T) {
	r := xrand.New(101)
	for iter := 0; iter < 5000; iter++ {
		d := 1 + r.IntN(4)
		a, b, c := randPoint(r, d, 100), randPoint(r, d, 100), randPoint(r, d, 100)
		if Dist(a, a) != 0 {
			t.Fatalf("Dist(a,a) = %v", Dist(a, a))
		}
		if Dist(a, b) != Dist(b, a) {
			t.Fatalf("asymmetric: %v vs %v", Dist(a, b), Dist(b, a))
		}
		lhs := Dist(a, c)
		rhs := Dist(a, b) + Dist(b, c)
		if lhs > rhs*(1+1e-12)+1e-12 {
			t.Fatalf("triangle inequality violated: %v > %v", lhs, rhs)
		}
	}
}

// TestMoveTowardRespectsStep: the resulting displacement never exceeds the
// step and the result lies on the segment [p, target].
func TestMoveTowardRespectsStep(t *testing.T) {
	r := xrand.New(102)
	for iter := 0; iter < 5000; iter++ {
		d := 1 + r.IntN(3)
		p := randPoint(r, d, 50)
		q := randPoint(r, d, 50)
		step := r.Range(0, 30)
		got := MoveToward(p, q, step)
		moved := Dist(p, got)
		if moved > step*(1+1e-12)+1e-12 {
			t.Fatalf("moved %v > step %v", moved, step)
		}
		seg := NewSegment(p, q)
		if seg.DistTo(got) > 1e-9*(1+Dist(p, q)) {
			t.Fatalf("result %v off segment [%v,%v]", got, p, q)
		}
	}
}

// TestMoveTowardReducesDistance: moving toward the target never increases
// distance to it.
func TestMoveTowardReducesDistance(t *testing.T) {
	r := xrand.New(103)
	for iter := 0; iter < 5000; iter++ {
		d := 1 + r.IntN(3)
		p := randPoint(r, d, 50)
		q := randPoint(r, d, 50)
		step := r.Range(0, 200)
		got := MoveToward(p, q, step)
		before := Dist(p, q)
		after := Dist(got, q)
		if after > before*(1+1e-12)+1e-12 {
			t.Fatalf("distance grew: %v -> %v", before, after)
		}
		// Exactly min(step, before) of progress is made.
		want := math.Max(before-step, 0)
		if math.Abs(after-want) > 1e-9*(1+before) {
			t.Fatalf("progress wrong: after=%v want=%v", after, want)
		}
	}
}

// TestLerpDistProportional: Dist(p, Lerp(p,q,t)) == t·Dist(p,q) for t in [0,1].
func TestLerpDistProportional(t *testing.T) {
	r := xrand.New(104)
	for iter := 0; iter < 3000; iter++ {
		d := 1 + r.IntN(3)
		p := randPoint(r, d, 50)
		q := randPoint(r, d, 50)
		tt := r.Float64()
		got := Dist(p, Lerp(p, q, tt))
		want := tt * Dist(p, q)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("Lerp distance %v want %v", got, want)
		}
	}
}

// TestSegmentClosestToIsClosest: the returned point beats random points of
// the segment.
func TestSegmentClosestToIsClosest(t *testing.T) {
	r := xrand.New(105)
	for iter := 0; iter < 2000; iter++ {
		d := 1 + r.IntN(3)
		s := NewSegment(randPoint(r, d, 20), randPoint(r, d, 20))
		p := randPoint(r, d, 40)
		best, _ := s.ClosestTo(p)
		bd := Dist(p, best)
		for k := 0; k < 10; k++ {
			alt := s.At(r.Float64())
			if Dist(p, alt) < bd-1e-9 {
				t.Fatalf("ClosestTo not optimal: %v vs %v", bd, Dist(p, alt))
			}
		}
	}
}

// TestProjectOrthogonal: the residual p - proj is orthogonal to the line
// direction.
func TestProjectOrthogonal(t *testing.T) {
	r := xrand.New(106)
	for iter := 0; iter < 2000; iter++ {
		d := 2 + r.IntN(2)
		a := randPoint(r, d, 20)
		b := randPoint(r, d, 20)
		if Dist(a, b) < 1e-6 {
			continue
		}
		l := NewLine(a, b)
		p := randPoint(r, d, 40)
		proj, _ := l.Project(p)
		if dot := p.Sub(proj).Dot(l.Dir); math.Abs(dot) > 1e-8 {
			t.Fatalf("projection residual not orthogonal: dot=%v", dot)
		}
	}
}

// TestCentroidMinimizesSumSq uses testing/quick: the centroid minimizes the
// sum of squared distances against random perturbations.
func TestCentroidMinimizesSumSq(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.IntN(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPoint(r, 2, 10)
		}
		c := Centroid(pts)
		sumSq := func(q Point) float64 {
			s := 0.0
			for _, p := range pts {
				s += DistSq(q, p)
			}
			return s
		}
		base := sumSq(c)
		for k := 0; k < 8; k++ {
			perturbed := c.Add(randPoint(r, 2, 1))
			if sumSq(perturbed) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundsContainAll via testing/quick.
func TestBoundsContainAll(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.IntN(20)
		d := 1 + r.IntN(3)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPoint(r, d, 1000)
		}
		b := Bounds(pts)
		for _, p := range pts {
			if !b.Contains(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadVsBounds: diameter is at least the largest box side and at most
// the box diagonal.
func TestSpreadVsBounds(t *testing.T) {
	r := xrand.New(107)
	for iter := 0; iter < 1000; iter++ {
		n := 2 + r.IntN(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPoint(r, 2, 100)
		}
		sp := Spread(pts)
		b := Bounds(pts)
		if sp > b.Diagonal()*(1+1e-12) {
			t.Fatalf("spread %v exceeds diagonal %v", sp, b.Diagonal())
		}
		side := math.Max(b.Max[0]-b.Min[0], b.Max[1]-b.Min[1])
		if sp < side*(1-1e-12) {
			t.Fatalf("spread %v below max side %v", sp, side)
		}
	}
}
