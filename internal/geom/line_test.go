package geom

import (
	"math"
	"testing"
)

func TestSegmentBasics(t *testing.T) {
	s := NewSegment(NewPoint(0, 0), NewPoint(3, 4))
	if s.Length() != 5 {
		t.Fatalf("Length = %v", s.Length())
	}
	if !s.At(0).Equal(NewPoint(0, 0)) || !s.At(1).Equal(NewPoint(3, 4)) {
		t.Fatal("At endpoints wrong")
	}
	if !s.At(-5).Equal(NewPoint(0, 0)) || !s.At(5).Equal(NewPoint(3, 4)) {
		t.Fatal("At does not clamp")
	}
}

func TestSegmentClosestToInterior(t *testing.T) {
	s := NewSegment(NewPoint(0, 0), NewPoint(10, 0))
	q, tt := s.ClosestTo(NewPoint(4, 7))
	if !q.ApproxEqual(NewPoint(4, 0), 1e-12) || !approx(tt, 0.4, 1e-12) {
		t.Fatalf("ClosestTo = %v at t=%v", q, tt)
	}
}

func TestSegmentClosestToEndpoints(t *testing.T) {
	s := NewSegment(NewPoint(0, 0), NewPoint(10, 0))
	q, tt := s.ClosestTo(NewPoint(-5, 3))
	if !q.Equal(NewPoint(0, 0)) || tt != 0 {
		t.Fatalf("left clamp failed: %v t=%v", q, tt)
	}
	q, tt = s.ClosestTo(NewPoint(15, -3))
	if !q.Equal(NewPoint(10, 0)) || tt != 1 {
		t.Fatalf("right clamp failed: %v t=%v", q, tt)
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := NewSegment(NewPoint(2, 2), NewPoint(2, 2))
	q, tt := s.ClosestTo(NewPoint(5, 6))
	if !q.Equal(NewPoint(2, 2)) || tt != 0 {
		t.Fatalf("degenerate ClosestTo = %v t=%v", q, tt)
	}
	if s.DistTo(NewPoint(5, 6)) != 5 {
		t.Fatalf("degenerate DistTo = %v", s.DistTo(NewPoint(5, 6)))
	}
}

func TestSegmentContains(t *testing.T) {
	s := NewSegment(NewPoint(0, 0), NewPoint(10, 0))
	if !s.Contains(NewPoint(5, 0), 1e-9) {
		t.Fatal("midpoint not contained")
	}
	if s.Contains(NewPoint(5, 1), 1e-9) {
		t.Fatal("off-segment point contained")
	}
}

func TestLineProject(t *testing.T) {
	l := NewLine(NewPoint(0, 0), NewPoint(1, 0))
	q, tt := l.Project(NewPoint(3, 4))
	if !q.ApproxEqual(NewPoint(3, 0), 1e-12) || !approx(tt, 3, 1e-12) {
		t.Fatalf("Project = %v t=%v", q, tt)
	}
	if !approx(l.DistTo(NewPoint(3, 4)), 4, 1e-12) {
		t.Fatalf("DistTo = %v", l.DistTo(NewPoint(3, 4)))
	}
}

func TestLineProjectNegativeParam(t *testing.T) {
	l := NewLine(NewPoint(5, 5), NewPoint(6, 5))
	_, tt := l.Project(NewPoint(0, 0))
	if tt >= 0 {
		t.Fatalf("expected negative parameter, got %v", tt)
	}
}

func TestNewLinePanicsOnCoincident(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLine(a,a) did not panic")
		}
	}()
	NewLine(NewPoint(1, 1), NewPoint(1, 1))
}

func TestCollinearTrue(t *testing.T) {
	pts := []Point{NewPoint(0, 0), NewPoint(1, 1), NewPoint(2, 2), NewPoint(-3, -3)}
	line, ok := Collinear(pts, 1e-9)
	if !ok {
		t.Fatal("collinear points not detected")
	}
	for _, p := range pts {
		if line.DistTo(p) > 1e-9 {
			t.Fatalf("returned line misses point %v", p)
		}
	}
}

func TestCollinearFalse(t *testing.T) {
	pts := []Point{NewPoint(0, 0), NewPoint(1, 0), NewPoint(0, 1)}
	if _, ok := Collinear(pts, 1e-9); ok {
		t.Fatal("triangle reported collinear")
	}
}

func TestCollinearCoincident(t *testing.T) {
	pts := []Point{NewPoint(2, 3), NewPoint(2, 3), NewPoint(2, 3)}
	line, ok := Collinear(pts, 1e-9)
	if !ok {
		t.Fatal("coincident points not collinear")
	}
	if line.Dir.NormSq() != 0 {
		t.Fatalf("coincident set should have zero Dir, got %v", line.Dir)
	}
}

func TestCollinearPair(t *testing.T) {
	pts := []Point{NewPoint(1, 2), NewPoint(3, 4)}
	if _, ok := Collinear(pts, 0); !ok {
		t.Fatal("two points must be collinear")
	}
}

func TestCollinearSingle(t *testing.T) {
	if _, ok := Collinear([]Point{NewPoint(1, 1)}, 0); !ok {
		t.Fatal("single point must be collinear")
	}
}

func TestCollinearTolerance(t *testing.T) {
	pts := []Point{NewPoint(0, 0), NewPoint(10, 0), NewPoint(5, 0.001)}
	if _, ok := Collinear(pts, 1e-6); ok {
		t.Fatal("1e-3 deviation passed 1e-6 tolerance")
	}
	if _, ok := Collinear(pts, 0.01); !ok {
		t.Fatal("1e-3 deviation failed 1e-2 tolerance")
	}
}

func TestCollinear3D(t *testing.T) {
	pts := []Point{NewPoint(0, 0, 0), NewPoint(1, 2, 3), NewPoint(2, 4, 6)}
	if _, ok := Collinear(pts, 1e-9); !ok {
		t.Fatal("3-D collinear points not detected")
	}
	pts = append(pts, NewPoint(1, 0, 0))
	if _, ok := Collinear(pts, 1e-9); ok {
		t.Fatal("3-D non-collinear points reported collinear")
	}
}

func TestSpread(t *testing.T) {
	pts := []Point{NewPoint(0, 0), NewPoint(3, 4), NewPoint(1, 1)}
	if Spread(pts) != 5 {
		t.Fatalf("Spread = %v", Spread(pts))
	}
	if Spread(nil) != 0 {
		t.Fatal("Spread(nil) != 0")
	}
}

func TestBounds(t *testing.T) {
	pts := []Point{NewPoint(1, 5), NewPoint(-2, 3), NewPoint(0, 7)}
	b := Bounds(pts)
	if !b.Min.Equal(NewPoint(-2, 3)) || !b.Max.Equal(NewPoint(1, 7)) {
		t.Fatalf("Bounds = %v..%v", b.Min, b.Max)
	}
}

func TestBoxContains(t *testing.T) {
	b := Bounds([]Point{NewPoint(0, 0), NewPoint(10, 10)})
	if !b.Contains(NewPoint(5, 5), 0) {
		t.Fatal("interior point not contained")
	}
	if !b.Contains(NewPoint(0, 10), 0) {
		t.Fatal("corner not contained")
	}
	if b.Contains(NewPoint(11, 5), 0) {
		t.Fatal("exterior point contained")
	}
	if !b.Contains(NewPoint(10.5, 5), 1) {
		t.Fatal("tolerance ignored")
	}
}

func TestBoxExpandCenterDiagonal(t *testing.T) {
	b := Bounds([]Point{NewPoint(0, 0), NewPoint(2, 2)})
	e := b.Expand(1)
	if !e.Min.Equal(NewPoint(-1, -1)) || !e.Max.Equal(NewPoint(3, 3)) {
		t.Fatalf("Expand = %v..%v", e.Min, e.Max)
	}
	if !b.Center().Equal(NewPoint(1, 1)) {
		t.Fatalf("Center = %v", b.Center())
	}
	if !approx(b.Diagonal(), 2*math.Sqrt2, 1e-12) {
		t.Fatalf("Diagonal = %v", b.Diagonal())
	}
}

func TestBoxUnion(t *testing.T) {
	a := Bounds([]Point{NewPoint(0, 0), NewPoint(1, 1)})
	c := Bounds([]Point{NewPoint(5, -2), NewPoint(6, 0)})
	u := a.Union(c)
	if !u.Min.Equal(NewPoint(0, -2)) || !u.Max.Equal(NewPoint(6, 1)) {
		t.Fatalf("Union = %v..%v", u.Min, u.Max)
	}
}

func TestBoxClamp(t *testing.T) {
	b := Bounds([]Point{NewPoint(0, 0), NewPoint(10, 10)})
	if !b.Clamp(NewPoint(-5, 20)).Equal(NewPoint(0, 10)) {
		t.Fatalf("Clamp = %v", b.Clamp(NewPoint(-5, 20)))
	}
	if !b.Clamp(NewPoint(3, 4)).Equal(NewPoint(3, 4)) {
		t.Fatal("Clamp moved interior point")
	}
}
