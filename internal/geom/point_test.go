package geom

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewPointCopies(t *testing.T) {
	coords := []float64{1, 2, 3}
	p := NewPoint(coords...)
	coords[0] = 99
	if p[0] != 1 {
		t.Fatal("NewPoint did not copy its input")
	}
}

func TestNewPointPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoint() did not panic")
		}
	}()
	NewPoint()
}

func TestZero(t *testing.T) {
	p := Zero(3)
	if p.Dim() != 3 {
		t.Fatalf("Zero(3).Dim() = %d", p.Dim())
	}
	for _, v := range p {
		if v != 0 {
			t.Fatalf("Zero(3) has nonzero coordinate: %v", p)
		}
	}
}

func TestZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zero(0) did not panic")
		}
	}()
	Zero(0)
}

func TestAddSub(t *testing.T) {
	p := NewPoint(1, 2)
	q := NewPoint(3, -4)
	sum := p.Add(q)
	if !sum.Equal(NewPoint(4, -2)) {
		t.Fatalf("Add = %v", sum)
	}
	diff := p.Sub(q)
	if !diff.Equal(NewPoint(-2, 6)) {
		t.Fatalf("Sub = %v", diff)
	}
	// Originals untouched.
	if !p.Equal(NewPoint(1, 2)) || !q.Equal(NewPoint(3, -4)) {
		t.Fatal("Add/Sub mutated operands")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-dimension Add did not panic")
		}
	}()
	NewPoint(1).Add(NewPoint(1, 2))
}

func TestScaleDot(t *testing.T) {
	p := NewPoint(1, -2, 3)
	if !p.Scale(2).Equal(NewPoint(2, -4, 6)) {
		t.Fatalf("Scale = %v", p.Scale(2))
	}
	if got := p.Dot(NewPoint(4, 5, 6)); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestNorm(t *testing.T) {
	p := NewPoint(3, 4)
	if p.Norm() != 5 {
		t.Fatalf("Norm = %v", p.Norm())
	}
	if p.NormSq() != 25 {
		t.Fatalf("NormSq = %v", p.NormSq())
	}
}

func TestDist(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(3, 4)
	if Dist(a, b) != 5 {
		t.Fatalf("Dist = %v", Dist(a, b))
	}
	if DistSq(a, b) != 25 {
		t.Fatalf("DistSq = %v", DistSq(a, b))
	}
}

func TestLerp(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(10, 20)
	mid := Lerp(a, b, 0.5)
	if !mid.Equal(NewPoint(5, 10)) {
		t.Fatalf("Lerp(0.5) = %v", mid)
	}
	if !Lerp(a, b, 0).Equal(a) || !Lerp(a, b, 1).Equal(b) {
		t.Fatal("Lerp endpoints wrong")
	}
	if !Midpoint(a, b).Equal(mid) {
		t.Fatal("Midpoint != Lerp 0.5")
	}
}

func TestMoveTowardExact(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(10, 0)
	got := MoveToward(a, b, 4)
	if !got.ApproxEqual(NewPoint(4, 0), 1e-12) {
		t.Fatalf("MoveToward = %v", got)
	}
}

func TestMoveTowardNoOvershoot(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(1, 1)
	got := MoveToward(a, b, 100)
	if !got.Equal(b) {
		t.Fatalf("MoveToward overshoot: %v", got)
	}
}

func TestMoveTowardZeroStep(t *testing.T) {
	a := NewPoint(2, 3)
	b := NewPoint(9, 9)
	if !MoveToward(a, b, 0).Equal(a) {
		t.Fatal("MoveToward with step 0 moved")
	}
	if !MoveToward(a, b, -1).Equal(a) {
		t.Fatal("MoveToward with negative step moved")
	}
}

func TestMoveTowardSelf(t *testing.T) {
	a := NewPoint(2, 3)
	if !MoveToward(a, a, 5).Equal(a) {
		t.Fatal("MoveToward(a,a) != a")
	}
}

func TestUnit(t *testing.T) {
	p := NewPoint(0, 5)
	if !p.Unit().ApproxEqual(NewPoint(0, 1), 1e-15) {
		t.Fatalf("Unit = %v", p.Unit())
	}
}

func TestUnitPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unit of zero vector did not panic")
		}
	}()
	Zero(2).Unit()
}

func TestEqualApproxEqual(t *testing.T) {
	a := NewPoint(1, 2)
	b := NewPoint(1, 2.0000001)
	if a.Equal(b) {
		t.Fatal("Equal false positive")
	}
	if !a.ApproxEqual(b, 1e-6) {
		t.Fatal("ApproxEqual false negative")
	}
	if a.ApproxEqual(NewPoint(1, 2, 3), 1) {
		t.Fatal("ApproxEqual across dimensions")
	}
}

func TestIsFinite(t *testing.T) {
	if !NewPoint(1, 2).IsFinite() {
		t.Fatal("finite point reported non-finite")
	}
	if NewPoint(math.NaN()).IsFinite() {
		t.Fatal("NaN point reported finite")
	}
	if NewPoint(math.Inf(1), 0).IsFinite() {
		t.Fatal("Inf point reported finite")
	}
}

func TestString(t *testing.T) {
	if s := NewPoint(1, -2.5).String(); s != "(1, -2.5)" {
		t.Fatalf("String = %q", s)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{NewPoint(0, 0), NewPoint(2, 0), NewPoint(0, 2), NewPoint(2, 2)}
	c := Centroid(pts)
	if !c.ApproxEqual(NewPoint(1, 1), 1e-12) {
		t.Fatalf("Centroid = %v", c)
	}
}

func TestCentroidPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Centroid(nil) did not panic")
		}
	}()
	Centroid(nil)
}

func TestSumDist(t *testing.T) {
	pts := []Point{NewPoint(0.0), NewPoint(10.0)}
	if got := SumDist(NewPoint(5.0), pts); got != 10 {
		t.Fatalf("SumDist = %v", got)
	}
	if got := SumDist(NewPoint(0.0), nil); got != 0 {
		t.Fatalf("SumDist empty = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := NewPoint(1, 2)
	q := p.Clone()
	q[0] = 7
	if p[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}
