package geom

import "math"

// Segment is the closed line segment between A and B. A degenerate segment
// (A == B) is allowed and behaves as the single point A.
type Segment struct {
	A, B Point
}

// NewSegment returns the segment from a to b. It panics on a dimension
// mismatch.
func NewSegment(a, b Point) Segment {
	assertSameDim(a, b)
	return Segment{A: a.Clone(), B: b.Clone()}
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// At returns the point A + t·(B-A) for t in [0,1]; t is clamped.
func (s Segment) At(t float64) Point {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return Lerp(s.A, s.B, t)
}

// ClosestTo returns the point of the segment closest to p, together with
// the parameter t in [0,1] such that the point equals At(t).
func (s Segment) ClosestTo(p Point) (Point, float64) {
	dir := s.B.Sub(s.A)
	den := dir.NormSq()
	if den == 0 {
		return s.A.Clone(), 0
	}
	t := p.Sub(s.A).Dot(dir) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Lerp(s.A, s.B, t), t
}

// DistTo returns the distance from p to the segment.
func (s Segment) DistTo(p Point) float64 {
	q, _ := s.ClosestTo(p)
	return Dist(p, q)
}

// Contains reports whether p lies on the segment within tolerance tol.
func (s Segment) Contains(p Point, tol float64) bool {
	return s.DistTo(p) <= tol
}

// Line is the infinite line through Origin with direction Dir (unit length).
type Line struct {
	Origin Point
	Dir    Point
}

// NewLine returns the line through a and b. It panics if a == b.
func NewLine(a, b Point) Line {
	assertSameDim(a, b)
	d := b.Sub(a)
	if d.NormSq() == 0 {
		panic("geom: NewLine requires two distinct points")
	}
	return Line{Origin: a.Clone(), Dir: d.Unit()}
}

// Project returns the orthogonal projection of p onto the line and the
// signed parameter t such that the projection equals Origin + t·Dir.
func (l Line) Project(p Point) (Point, float64) {
	t := p.Sub(l.Origin).Dot(l.Dir)
	return l.Origin.Add(l.Dir.Scale(t)), t
}

// DistTo returns the distance from p to the line.
func (l Line) DistTo(p Point) float64 {
	q, _ := l.Project(p)
	return Dist(p, q)
}

// Collinear reports whether all points lie on a common line, within
// absolute tolerance tol on the distance of each point from the best
// candidate line. Point sets of size <= 2 are always collinear. If the
// points are collinear (and not all coincident), the supporting line is
// returned with ok = true; for coincident point sets line.Dir is the zero
// vector and ok reports true.
func Collinear(pts []Point, tol float64) (Line, bool) {
	if len(pts) == 0 {
		panic("geom: Collinear of empty point set")
	}
	d := pts[0].Dim()
	// Find the point furthest from pts[0] to define a stable direction.
	var far Point
	maxD := 0.0
	for _, p := range pts {
		assertSameDim(pts[0], p)
		if dd := DistSq(pts[0], p); dd > maxD {
			maxD = dd
			far = p
		}
	}
	if len(pts) <= 2 {
		// One or two points are collinear by definition; avoid spurious
		// floating-point residue against a zero tolerance.
		if maxD == 0 {
			return Line{Origin: pts[0].Clone(), Dir: Zero(d)}, true
		}
		return NewLine(pts[0], far), true
	}
	if maxD == 0 {
		// All points coincide.
		return Line{Origin: pts[0].Clone(), Dir: Zero(d)}, true
	}
	line := NewLine(pts[0], far)
	for _, p := range pts {
		if line.DistTo(p) > tol {
			return Line{}, false
		}
	}
	return line, true
}

// Spread returns the maximum pairwise distance of the point set (its
// diameter). An empty set has spread 0.
func Spread(pts []Point) float64 {
	maxD := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := Dist(pts[i], pts[j]); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// Box is an axis-aligned bounding box.
type Box struct {
	Min, Max Point
}

// Bounds returns the axis-aligned bounding box of the points. It panics on
// an empty set.
func Bounds(pts []Point) Box {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	lo := pts[0].Clone()
	hi := pts[0].Clone()
	for _, p := range pts[1:] {
		assertSameDim(lo, p)
		for i := range p {
			lo[i] = math.Min(lo[i], p[i])
			hi[i] = math.Max(hi[i], p[i])
		}
	}
	return Box{Min: lo, Max: hi}
}

// Contains reports whether p lies in the box (inclusive), expanded by tol.
func (b Box) Contains(p Point, tol float64) bool {
	assertSameDim(b.Min, p)
	for i := range p {
		if p[i] < b.Min[i]-tol || p[i] > b.Max[i]+tol {
			return false
		}
	}
	return true
}

// Expand returns the box grown by pad on every side.
func (b Box) Expand(pad float64) Box {
	lo := b.Min.Clone()
	hi := b.Max.Clone()
	for i := range lo {
		lo[i] -= pad
		hi[i] += pad
	}
	return Box{Min: lo, Max: hi}
}

// Union returns the smallest box containing both b and c.
func (b Box) Union(c Box) Box {
	lo := b.Min.Clone()
	hi := b.Max.Clone()
	for i := range lo {
		lo[i] = math.Min(lo[i], c.Min[i])
		hi[i] = math.Max(hi[i], c.Max[i])
	}
	return Box{Min: lo, Max: hi}
}

// Center returns the center point of the box.
func (b Box) Center() Point { return Midpoint(b.Min, b.Max) }

// Diagonal returns the length of the box diagonal.
func (b Box) Diagonal() float64 { return Dist(b.Min, b.Max) }

// Clamp returns p with every coordinate clamped into the box.
func (b Box) Clamp(p Point) Point {
	assertSameDim(b.Min, p)
	out := p.Clone()
	for i := range out {
		if out[i] < b.Min[i] {
			out[i] = b.Min[i]
		}
		if out[i] > b.Max[i] {
			out[i] = b.Max[i]
		}
	}
	return out
}
