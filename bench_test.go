package mobileserver

// The benchmark harness regenerates every experiment of the reproduction
// (one benchmark per experiment, E1–E14) and additionally micro-benchmarks
// the computational kernels (geometric median, the simulator step loop,
// the streaming session, the offline DPs).
//
// Experiment benchmarks report the headline quantities via b.ReportMetric
// (e.g. the fitted log–log slope or the key ratio), so `go test -bench=.`
// reproduces the shape of every claim. Full-size tables are printed by
// cmd/mobbench; the benches run scaled-down sweeps to stay fast.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/median"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchCfg is the scaled-down experiment configuration used by benches.
func benchCfg() experiments.RunConfig {
	return experiments.RunConfig{Seed: 1, Seeds: 4, Scale: 0.15}
}

// reportFinding extracts a labelled numeric from the experiment findings
// when available; benches mainly assert the experiment runs and publish
// its headline metric.
func runExperiment(b *testing.B, id string, metric func(experiments.Result) (string, float64)) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = exp.Run(benchCfg())
	}
	if len(res.Table.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	if metric != nil {
		name, v := metric(res)
		b.ReportMetric(v, name)
	}
}

// meanColumn averages a column over rows passing the filter.
func meanColumn(res experiments.Result, col int, filter func(row []float64) bool) float64 {
	sum, n := 0.0, 0
	for _, row := range res.Table.Rows {
		if filter == nil || filter(row) {
			sum += row[col]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func BenchmarkE01Theorem1LowerBound(b *testing.B) {
	runExperiment(b, "E1", func(res experiments.Result) (string, float64) {
		// Mean ratio at the largest T (D=1 rows).
		maxT := 0.0
		for _, row := range res.Table.Rows {
			if row[0] == 1 && row[1] > maxT {
				maxT = row[1]
			}
		}
		return "ratio@maxT", meanColumn(res, 2, func(r []float64) bool { return r[0] == 1 && r[1] == maxT })
	})
}

func BenchmarkE02Theorem2LowerBound(b *testing.B) {
	runExperiment(b, "E2", func(res experiments.Result) (string, float64) {
		// ratio·δ should be roughly constant; report its mean over the
		// Rmax=Rmin sweep.
		return "ratio_x_delta", meanColumn(res, 5, func(r []float64) bool { return r[1] == 1 })
	})
}

func BenchmarkE03AnswerFirstLowerBound(b *testing.B) {
	runExperiment(b, "E3", func(res experiments.Result) (string, float64) {
		return "ratio@r32_D1", meanColumn(res, 2, func(r []float64) bool { return r[0] == 1 && r[1] == 32 })
	})
}

func BenchmarkE04MtCLineDelta(b *testing.B) {
	runExperiment(b, "E4", func(res experiments.Result) (string, float64) {
		return "ratiohi_x_delta", meanColumn(res, 5, func(r []float64) bool { return r[0] == 0 })
	})
}

func BenchmarkE05MtCPlaneDelta(b *testing.B) {
	runExperiment(b, "E5", func(res experiments.Result) (string, float64) {
		return "ratiohi_x_d32", meanColumn(res, 4, nil)
	})
}

func BenchmarkE06Lemma6Geometry(b *testing.B) {
	runExperiment(b, "E6", func(res experiments.Result) (string, float64) {
		return "fixed_violations", meanColumn(res, 4, nil)
	})
}

func BenchmarkE07AnswerFirstMtC(b *testing.B) {
	runExperiment(b, "E7", func(res experiments.Result) (string, float64) {
		return "overhead@r16", meanColumn(res, 4, func(r []float64) bool { return r[0] == 16 && r[1] == 1 })
	})
}

func BenchmarkE08MovingClientLowerBound(b *testing.B) {
	runExperiment(b, "E8", func(res experiments.Result) (string, float64) {
		maxT := 0.0
		for _, row := range res.Table.Rows {
			if row[0] == 1 && row[1] > maxT {
				maxT = row[1]
			}
		}
		return "ratio@eps1_maxT", meanColumn(res, 2, func(r []float64) bool { return r[0] == 1 && r[1] == maxT })
	})
}

func BenchmarkE09MovingClientMtC(b *testing.B) {
	runExperiment(b, "E9", func(res experiments.Result) (string, float64) {
		return "ratio_lo_mean", meanColumn(res, 3, nil)
	})
}

func BenchmarkE10Baselines(b *testing.B) {
	runExperiment(b, "E10", func(res experiments.Result) (string, float64) {
		// Lazy vs MtC on the hotspot workload (wl=1, alg=1).
		return "lazy_vs_mtc@hotspot", meanColumn(res, 4, func(r []float64) bool { return r[0] == 1 && r[1] == 1 })
	})
}

func BenchmarkE11Ablations(b *testing.B) {
	runExperiment(b, "E11", func(res experiments.Result) (string, float64) {
		// Full-speed variant overhead on the scatter scenario.
		return "fullspeed_vs_paper", meanColumn(res, 4, func(r []float64) bool { return r[0] == 1 && r[1] == 2 })
	})
}

func BenchmarkE12MultiServer(b *testing.B) {
	runExperiment(b, "E12", func(res experiments.Result) (string, float64) {
		var c1, c4 float64
		for _, row := range res.Table.Rows {
			if row[1] == 0 && row[0] == 1 {
				c1 = row[2]
			}
			if row[1] == 0 && row[0] == 4 {
				c4 = row[2]
			}
		}
		if c4 == 0 {
			return "k1_vs_k4", 0
		}
		return "k1_vs_k4", c1 / c4
	})
}

func BenchmarkE13PotentialAudit(b *testing.B) {
	runExperiment(b, "E13", func(res experiments.Result) (string, float64) {
		worst := 0.0
		for _, row := range res.Table.Rows {
			if row[5] > worst {
				worst = row[5]
			}
		}
		return "max_const_x_delta", worst
	})
}

func BenchmarkE14PlanarOpenProblem(b *testing.B) {
	runExperiment(b, "E14", func(res experiments.Result) (string, float64) {
		// Mean ratio·δ over the zigzag style — flat means Θ(1/δ).
		return "zigzag_ratio_x_delta", meanColumn(res, 4, func(r []float64) bool { return r[0] == 1 })
	})
}

// --- kernel micro-benchmarks ---

func benchPoints(n, dim int, seed uint64) []Point {
	r := xrand.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for k := range p {
			p[k] = r.Range(-10, 10)
		}
		pts[i] = p
	}
	return pts
}

func BenchmarkGeometricMedian8Points2D(b *testing.B) {
	pts := benchPoints(8, 2, 1)
	anchor := NewPoint(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		median.Closest(pts, anchor, median.Options{})
	}
}

func BenchmarkGeometricMedian64Points3D(b *testing.B) {
	pts := benchPoints(64, 3, 2)
	anchor := NewPoint(0, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		median.Closest(pts, anchor, median.Options{})
	}
}

func BenchmarkMedianCollinear1D(b *testing.B) {
	pts := benchPoints(32, 1, 3)
	anchor := NewPoint(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		median.Closest(pts, anchor, median.Options{})
	}
}

func BenchmarkSimulateMtCHotspot(b *testing.B) {
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
	in := workload.Hotspot{Requests: 4}.Generate(xrand.New(4), cfg, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(in, core.NewMtC(), sim.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingSessionStep(b *testing.B) {
	// The streaming hot path: one request per Step into a live session,
	// reusing the batch buffer — the constant-memory ingestion loop.
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(cfg, NewPoint(0, 0), NewMtC(), RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		req := NewPoint(0, 0)
		batch := []Point{req}
		for t := 0; t < 1000; t++ {
			req[0] = float64(t % 50)
			req[1] = 1
			if err := s.Step(batch); err != nil {
				b.Fatal(err)
			}
		}
		s.Finish()
	}
}

func BenchmarkLineDP(b *testing.B) {
	cfg := Config{Dim: 1, D: 2, M: 1, Delta: 0, Order: MoveFirst}
	in := workload.Hotspot{Half: 20, Sigma: 1}.Generate(xrand.New(5), cfg, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.LineDP(in, 4, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaneDP(b *testing.B) {
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: MoveFirst}
	in := workload.Hotspot{Half: 6, Sigma: 1}.Generate(xrand.New(6), cfg, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.PlaneDP(in, 3, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescentRefinement(b *testing.B) {
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: MoveFirst}
	in := workload.Clusters{Requests: 3}.Generate(xrand.New(7), cfg, 200)
	init := offline.Greedy(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := offline.Descent(in, init, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelThroughput(b *testing.B) {
	// Measures harness overhead: tiny jobs through the worker pool.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Parallel(256, 1, func(j int, r *xrand.Rand) float64 { return r.Float64() })
	}
}

// Guard: every experiment in the registry has a corresponding benchmark in
// this file (checked by name convention at test time).
func TestEveryExperimentHasABenchmark(t *testing.T) {
	src := benchSourceNames
	for _, e := range experiments.Registry() {
		num := strings.TrimPrefix(e.ID, "E")
		if len(num) == 1 {
			num = "0" + num
		}
		want := "BenchmarkE" + num
		found := false
		for _, name := range src {
			if strings.HasPrefix(name, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("experiment %s has no benchmark (want prefix %s)", e.ID, want)
		}
	}
}

// benchSourceNames lists the experiment benchmarks defined above; kept in
// one place so TestEveryExperimentHasABenchmark stays trivial.
var benchSourceNames = []string{
	"BenchmarkE01Theorem1LowerBound",
	"BenchmarkE02Theorem2LowerBound",
	"BenchmarkE03AnswerFirstLowerBound",
	"BenchmarkE04MtCLineDelta",
	"BenchmarkE05MtCPlaneDelta",
	"BenchmarkE06Lemma6Geometry",
	"BenchmarkE07AnswerFirstMtC",
	"BenchmarkE08MovingClientLowerBound",
	"BenchmarkE09MovingClientMtC",
	"BenchmarkE10Baselines",
	"BenchmarkE11Ablations",
	"BenchmarkE12MultiServer",
	"BenchmarkE13PotentialAudit",
	"BenchmarkE14PlanarOpenProblem",
}
