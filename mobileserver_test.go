package mobileserver

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func demoInstance(T int) *Instance {
	cfg := Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
	return workload.Hotspot{Half: 15, Sigma: 1}.Generate(xrand.New(1), cfg, T)
}

func TestRunFacade(t *testing.T) {
	res, err := Run(demoInstance(100), NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cost.Total() > 0) {
		t.Fatalf("cost = %v", res.Cost)
	}
}

func TestMeasureRatioBracket(t *testing.T) {
	rep, err := MeasureRatio(demoInstance(150), NewMtC())
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.AlgorithmCost > 0) {
		t.Fatal("no cost measured")
	}
	if rep.Opt.Lower <= 0 || rep.Opt.Upper < rep.Opt.Lower {
		t.Fatalf("bad OPT bracket: %+v", rep.Opt)
	}
	if rep.RatioLow > rep.RatioHigh {
		t.Fatalf("ratio bracket inverted: [%v, %v]", rep.RatioLow, rep.RatioHigh)
	}
	// With (1+δ)m augmentation the online algorithm may legitimately beat
	// the m-capped optimum, so RatioLow can dip below 1 — but not by much
	// on a followable hotspot.
	if rep.RatioLow < 0.5 {
		t.Fatalf("implausibly low ratio %v — OPT upper bound broken?", rep.RatioLow)
	}
}

func TestEstimateOPT(t *testing.T) {
	est, err := EstimateOPT(demoInstance(80))
	if err != nil {
		t.Fatal(err)
	}
	if est.Lower <= 0 || math.IsInf(est.Upper, 1) {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestRunAgentFacade(t *testing.T) {
	cfg := AgentConfig{Dim: 2, D: 2, MS: 1, MA: 1, Delta: 0}
	r := xrand.New(3)
	in := &AgentInstance{
		Config: cfg,
		Start:  NewPoint(0, 0),
		Path:   agent.RandomWalk(r, NewPoint(0, 0), 120, cfg.MA),
	}
	res, err := RunAgent(in, NewFollowAgent(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cost.Total() > 0) {
		t.Fatal("agent run produced no cost")
	}
}

// Example demonstrates the quickstart flow: build an instance, run MtC,
// and measure its competitive ratio.
func Example() {
	in := &Instance{
		Config: Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: MoveFirst},
		Start:  NewPoint(0),
		Steps: []Step{
			{Requests: []Point{NewPoint(3)}},
			{Requests: []Point{NewPoint(4)}},
			{Requests: []Point{NewPoint(5)}},
		},
	}
	res, err := Run(in, NewMtC(), RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d steps, cost > 0: %v\n", in.T(), res.Cost.Total() > 0)
	// Output: served 3 steps, cost > 0: true
}
