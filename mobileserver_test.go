package mobileserver

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func demoInstance(T int) *Instance {
	cfg := Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
	return workload.Hotspot{Half: 15, Sigma: 1}.Generate(xrand.New(1), cfg, T)
}

func TestRunFacade(t *testing.T) {
	res, err := Run(demoInstance(100), NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cost.Total() > 0) {
		t.Fatalf("cost = %v", res.Cost)
	}
}

func TestMeasureRatioBracket(t *testing.T) {
	rep, err := MeasureRatio(demoInstance(150), NewMtC())
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.AlgorithmCost > 0) {
		t.Fatal("no cost measured")
	}
	if rep.Opt.Lower <= 0 || rep.Opt.Upper < rep.Opt.Lower {
		t.Fatalf("bad OPT bracket: %+v", rep.Opt)
	}
	if rep.RatioLow > rep.RatioHigh {
		t.Fatalf("ratio bracket inverted: [%v, %v]", rep.RatioLow, rep.RatioHigh)
	}
	// With (1+δ)m augmentation the online algorithm may legitimately beat
	// the m-capped optimum, so RatioLow can dip below 1 — but not by much
	// on a followable hotspot.
	if rep.RatioLow < 0.5 {
		t.Fatalf("implausibly low ratio %v — OPT upper bound broken?", rep.RatioLow)
	}
}

func TestEstimateOPT(t *testing.T) {
	est, err := EstimateOPT(demoInstance(80))
	if err != nil {
		t.Fatal(err)
	}
	if est.Lower <= 0 || math.IsInf(est.Upper, 1) {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestRunAgentFacade(t *testing.T) {
	cfg := AgentConfig{Dim: 2, D: 2, MS: 1, MA: 1, Delta: 0}
	r := xrand.New(3)
	in := &AgentInstance{
		Config: cfg,
		Start:  NewPoint(0, 0),
		Path:   agent.RandomWalk(r, NewPoint(0, 0), 120, cfg.MA),
	}
	res, err := RunAgent(in, NewFollowAgent(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cost.Total() > 0) {
		t.Fatal("agent run produced no cost")
	}
}

func TestSessionFacadeStreamsWithoutInstance(t *testing.T) {
	// The streaming entry point: feed batches step by step and get the
	// same Result as the batch Run on the equivalent instance.
	in := demoInstance(120)
	s, err := NewSession(in.Config, in.Start, NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var observed int
	obs, err := NewSession(in.Config, in.Start, NewMtC(), RunOptions{
		Observers: []Observer{ObserverFunc(func(StepInfo) { observed++ })},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range in.Steps {
		if err := s.Step(step.Requests); err != nil {
			t.Fatal(err)
		}
		if err := obs.Step(step.Requests); err != nil {
			t.Fatal(err)
		}
	}
	streamed := s.Finish()
	batched, err := Run(in, NewMtC(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Cost != batched.Cost || !streamed.Final.Equal(batched.Final) {
		t.Fatalf("streamed %+v != batched %+v", streamed.Cost, batched.Cost)
	}
	_ = obs.Finish()
	if observed != in.T() {
		t.Fatalf("observer saw %d steps, want %d", observed, in.T())
	}
}

func TestFleetSessionFacade(t *testing.T) {
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: MoveFirst, K: 3}
	s, err := NewFleetSession(cfg, SpreadStarts(cfg, 5), NewMtCK(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Step([]Point{NewPoint(float64(i%7), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Finish()
	if len(res.Final) != 3 {
		t.Fatalf("final fleet size %d", len(res.Final))
	}
	if !(res.Cost.Total() > 0) || res.MaxMove > cfg.OnlineCap()*(1+1e-9) {
		t.Fatalf("fleet result %+v", res)
	}
}

// Example demonstrates the quickstart flow: build an instance, run MtC,
// and measure its competitive ratio.
func Example() {
	in := &Instance{
		Config: Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: MoveFirst},
		Start:  NewPoint(0),
		Steps: []Step{
			{Requests: []Point{NewPoint(3)}},
			{Requests: []Point{NewPoint(4)}},
			{Requests: []Point{NewPoint(5)}},
		},
	}
	res, err := Run(in, NewMtC(), RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d steps, cost > 0: %v\n", in.T(), res.Cost.Total() > 0)
	// Output: served 3 steps, cost > 0: true
}
