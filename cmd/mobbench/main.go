// Command mobbench regenerates the reproduction tables (experiments
// E1–E14, one per theorem/lemma of the paper — see DESIGN.md for the
// inventory).
//
// Usage:
//
//	mobbench                 # run the full suite at default scale
//	mobbench -exp E4         # run a single experiment
//	mobbench -scale 0.25     # shrink sequence lengths (faster)
//	mobbench -seeds 32       # more repetitions per parameter point
//	mobbench -csv out/       # also write one CSV per experiment
//	mobbench -list           # list experiments and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment ID to run (default: all)")
		scale  = flag.Float64("scale", 1.0, "sequence-length scale factor (0 < s <= 1)")
		seeds  = flag.Int("seeds", 16, "repetitions per parameter point")
		seed   = flag.Uint64("seed", 1, "base random seed")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV tables")
		plot   = flag.Bool("plot", false, "render the headline curve of each experiment as ASCII art")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := experiments.RunConfig{Seed: *seed, Seeds: *seeds, Scale: *scale}
	var toRun []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.Registry()
	}

	for _, e := range toRun {
		start := time.Now()
		res := e.Run(cfg)
		fmt.Print(experiments.RenderText(res))
		if *plot {
			if rendered, ok := experiments.PlotFor(res); ok {
				fmt.Print(rendered)
			}
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fatal(err)
			}
		}
	}
}

func writeCSV(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, strings.ToLower(res.ID)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Table.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobbench:", err)
	os.Exit(1)
}
