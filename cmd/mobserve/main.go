// Command mobserve serves a live Mobile Server session over HTTP: clients
// POST request batches to /step, batches arriving within the coalescing
// window are merged into one engine step, a bounded queue answers 429 when
// overloaded, and /metrics and /state stream live counters. Unless
// -stream=false, two persistent streaming endpoints ride along: POST
// /stream upgrades the connection to pipelined NDJSON step frames (one
// client streams batches without per-request HTTP overhead; backpressure
// arrives as typed throttle frames), and GET /metrics/stream pushes one
// server-sent metrics event per executed step. With -shards N
// the space is partitioned into N regions along axis 0 and each region is
// served by its own fleet of -k servers — requests route to their region's
// session and the shards step concurrently. With -rebalance threshold the
// shard layout additionally adapts to the load: per-shard request counts
// are watched over a sliding window and, when the skew crosses the
// threshold, a server migrates from a cold shard into its hot neighbor
// (migrations ride GET /metrics/stream as "rebalance" events, and /state
// reports the live per-shard fleet sizes). With -checkpoint the full
// state (all shards, the live layout, and the observers) is written
// atomically after every step, and a restarted mobserve resumes from that
// file exactly where the killed process stood — including /metrics, which
// continues the pre-crash totals, and the migrated layout. Raising -every
// trades that durability for fewer writes: a crash can then lose up to
// every-1 acknowledged steps.
//
// Usage:
//
//	mobserve -addr :8080 -dim 2 -D 4 -delta 0.5           # single server
//	mobserve -k 4 -alg mtck -window 2ms -queue 128        # fleet of 4
//	mobserve -shards 4 -k 2 -span 25                      # 4 regions × 2 servers
//	mobserve -shards 4 -k 2 -rebalance threshold          # adaptive layout
//	mobserve -checkpoint mobserve.ckpt                    # crash-safe
//
//	curl -X POST localhost:8080/step -d '{"requests":[[3,4]]}'
//	curl localhost:8080/metrics
//	curl localhost:8080/state
//	curl localhost:8080/snapshot > manual.ckpt
//	curl -N localhost:8080/metrics/stream                 # SSE, one event/step
//
// See examples/client for a load generator that drives this server and
// reconciles its own counters against /metrics (use its -regions flag to
// spread load across the shards, and -stream to pipeline NDJSON frames
// over one connection instead of per-request HTTP).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dim     = flag.Int("dim", 2, "dimension of the space")
		D       = flag.Float64("D", 2, "page weight D >= 1")
		m       = flag.Float64("m", 1, "offline movement cap m")
		delta   = flag.Float64("delta", 0.5, "augmentation delta in [0,1]")
		answer  = flag.Bool("answer-first", false, "serve requests before moving")
		k       = flag.Int("k", 1, "number of servers (per shard when -shards > 1)")
		shards  = flag.Int("shards", 1, "spatial shards along axis 0, each with its own fleet of k servers")
		span    = flag.Float64("span", 25, "half-width of the sharded interval: -shards regions split [-span, span]")
		algName = flag.String("alg", "", "algorithm: mtc|mtck|lazy (default mtc, mtck when -k > 1 or -shards > 1)")
		radius  = flag.Float64("radius", 5, "initial fleet spread radius; when sharded, how far the unbounded outer regions' fleets extend past their boundary (interior fleets spread across their full region)")
		window  = flag.Duration("window", 2*time.Millisecond, "batch coalescing window (0 = no wait)")
		queue   = flag.Int("queue", server.DefaultQueueLimit, "bounded queue size before 429")
		ckpt    = flag.String("checkpoint", "", "checkpoint file; resumes from it when present")
		every   = flag.Int("every", 1, "steps between checkpoints")
		clamp   = flag.Bool("clamp", false, "clamp over-cap moves instead of failing the step")
		stream  = flag.Bool("stream", true, "serve the persistent streaming endpoints (POST /stream frames, GET /metrics/stream SSE)")
		wireOpt = flag.String("wire", "binary", "stream encoding policy: binary (grant clients' binary-frame requests) | ndjson (pin every stream to NDJSON)")

		rebalance = flag.String("rebalance", "", "dynamic shard rebalancing policy: threshold (empty = static layout; requires -shards > 1)")
		rebWindow = flag.Int("rebalance-window", shard.DefaultRebalanceWindow, "rebalancing: sliding load-window length in steps")
		rebRatio  = flag.Float64("rebalance-ratio", 2, "rebalancing: migrate when the hot shard's windowed load reaches ratio × its colder neighbor's")
		rebCool   = flag.Int("rebalance-cooldown", 0, "rebalancing: minimum steps between migrations (0 = one full window)")
	)
	flag.Parse()

	cfg := core.Config{Dim: *dim, D: *D, M: *m, Delta: *delta, K: *k,
		Partition: core.UniformPartition(*shards, *span)}
	if *answer {
		cfg.Order = core.AnswerFirst
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	newAlg, err := pickAlgorithm(*algName, cfg)
	if err != nil {
		fatal(err)
	}
	opts := server.Options{
		CoalesceWindow:  *window,
		QueueLimit:      *queue,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *every,
	}
	if *clamp {
		opts.Mode = engine.Clamp
	}
	switch *rebalance {
	case "":
	case "threshold":
		if cfg.Partition.Shards() <= 1 {
			fatal(errors.New("-rebalance requires -shards > 1"))
		}
		if cfg.Servers() <= 1 {
			// With one server per shard every donor sits at the policy's
			// floor, so no migration could ever fire — refuse rather than
			// silently serve a static layout.
			fatal(errors.New("-rebalance requires -k > 1 (single-server shards have no server to donate)"))
		}
		// Refuse out-of-range tuning instead of letting the policy lift it
		// to its defaults behind the operator's back.
		if *rebWindow < 1 {
			fatal(fmt.Errorf("-rebalance-window %d: need >= 1", *rebWindow))
		}
		if *rebRatio <= 1 {
			fatal(fmt.Errorf("-rebalance-ratio %g: need > 1 (parity would thrash servers on noise)", *rebRatio))
		}
		if *rebCool < 0 {
			fatal(fmt.Errorf("-rebalance-cooldown %d: need >= 0 (0 = one full window)", *rebCool))
		}
		opts.Rebalancer = &shard.Threshold{WindowSteps: *rebWindow, Ratio: *rebRatio, Cooldown: *rebCool}
	default:
		fatal(fmt.Errorf("unknown rebalance policy %q (threshold)", *rebalance))
	}

	srv, resumed, err := open(cfg, newAlg, opts, *radius)
	if err != nil {
		fatal(err)
	}
	switch *wireOpt {
	case "binary", "ndjson":
		srv.SetStreamWire(*wireOpt)
	default:
		fatal(fmt.Errorf("unknown -wire policy %q (binary|ndjson)", *wireOpt))
	}
	layout := fmt.Sprintf("K=%d, dim %d", cfg.Servers(), cfg.Dim)
	if n := cfg.Partition.Shards(); n > 1 {
		layout = fmt.Sprintf("%d shards × K=%d, dim %d", n, cfg.Servers(), cfg.Dim)
		if *rebalance != "" {
			layout += fmt.Sprintf(", %s rebalancing (window %d)", *rebalance, *rebWindow)
		}
	}
	if resumed {
		fmt.Printf("resumed %s (%s) from %s at step %d\n", srv.Algorithm(), layout, *ckpt, srv.T())
	} else {
		fmt.Printf("serving %s (%s) fresh\n", srv.Algorithm(), layout)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.HandlerWith(*stream)}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		transports := "transports: http"
		if *stream {
			transports = "transports: http + ndjson /stream + sse /metrics/stream"
		}
		fmt.Printf("listening on %s (coalescing window %v, queue %d; %s)\n", *addr, *window, *queue, transports)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	<-done
	fmt.Println("\nshutting down: draining queue and writing final checkpoint")
	// Close the service before the HTTP listener: Close ends every Watch
	// subscription, so blocked /metrics/stream handlers return and
	// Shutdown does not stall its full timeout waiting on SSE consumers.
	// (Hijacked /stream connections are outside Shutdown's tracking and
	// close with the process.) Handlers that race the close get 503.
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "final checkpoint: %v\n", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
	}
	res := srv.Finish()
	fmt.Printf("served %d steps, %s, final positions %v\n", res.Steps, res.Cost, res.Final)
}

// open resumes from the checkpoint file when it exists, otherwise starts
// fresh — in router mode when the configuration is sharded, with each
// region's fleet spread inside its own boundaries.
func open(cfg core.Config, newAlg func() core.FleetAlgorithm, opts server.Options, radius float64) (*server.Server, bool, error) {
	sharded := cfg.Partition.Shards() > 1
	if opts.CheckpointPath != "" {
		if snap, err := os.ReadFile(opts.CheckpointPath); err == nil {
			var srv *server.Server
			if sharded {
				srv, err = server.ResumeSharded(cfg, newAlg, snap, opts)
			} else {
				srv, err = server.Resume(cfg, newAlg(), snap, opts)
			}
			if err != nil {
				return nil, false, fmt.Errorf("resume from %s: %w", opts.CheckpointPath, err)
			}
			return srv, true, nil
		} else if !os.IsNotExist(err) {
			return nil, false, err
		}
	}
	if sharded {
		srv, err := server.NewSharded(cfg, shard.Starts(cfg, radius), newAlg, opts)
		return srv, false, err
	}
	var starts []geom.Point
	if cfg.Servers() == 1 {
		starts = []geom.Point{geom.Zero(cfg.Dim)}
	} else {
		starts = multi.SpreadStarts(cfg, radius)
	}
	srv, err := server.New(cfg, starts, newAlg(), opts)
	return srv, false, err
}

// pickAlgorithm maps the -alg flag to a factory for fleet controllers
// (sharded servers need one independent instance per shard), defaulting to
// the paper's MtC for a single unsharded server and cluster-and-chase
// otherwise.
func pickAlgorithm(name string, cfg core.Config) (func() core.FleetAlgorithm, error) {
	if name == "" {
		if cfg.Servers() > 1 || cfg.Partition.Shards() > 1 {
			name = "mtck"
		} else {
			name = "mtc"
		}
	}
	switch name {
	case "mtc":
		if cfg.Servers() != 1 {
			return nil, fmt.Errorf("mobserve: -alg mtc is single-server; use -alg mtck for K=%d", cfg.Servers())
		}
		return func() core.FleetAlgorithm { return core.Fleet(core.NewMtC()) }, nil
	case "mtck":
		return func() core.FleetAlgorithm { return multi.NewMtCK() }, nil
	case "lazy":
		return func() core.FleetAlgorithm { return multi.NewLazyK() }, nil
	default:
		return nil, fmt.Errorf("mobserve: unknown algorithm %q (mtc|mtck|lazy)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobserve:", err)
	os.Exit(1)
}
