// Command mobserve serves a live Mobile Server session over HTTP: clients
// POST request batches to /step, batches arriving within the coalescing
// window are merged into one engine step, a bounded queue answers 429 when
// overloaded, and /metrics and /state stream live counters. With
// -checkpoint the session state is written atomically after every step, and
// a restarted mobserve resumes from that file exactly where the killed
// process stood. Raising -every trades that durability for fewer writes: a
// crash can then lose up to every-1 acknowledged steps.
//
// Usage:
//
//	mobserve -addr :8080 -dim 2 -D 4 -delta 0.5           # single server
//	mobserve -k 4 -alg mtck -window 2ms -queue 128        # fleet of 4
//	mobserve -checkpoint mobserve.ckpt                    # crash-safe
//
//	curl -X POST localhost:8080/step -d '{"requests":[[3,4]]}'
//	curl localhost:8080/metrics
//	curl localhost:8080/state
//	curl localhost:8080/snapshot > manual.ckpt
//
// See examples/client for a load generator that drives this server and
// reconciles its own counters against /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dim     = flag.Int("dim", 2, "dimension of the space")
		D       = flag.Float64("D", 2, "page weight D >= 1")
		m       = flag.Float64("m", 1, "offline movement cap m")
		delta   = flag.Float64("delta", 0.5, "augmentation delta in [0,1]")
		answer  = flag.Bool("answer-first", false, "serve requests before moving")
		k       = flag.Int("k", 1, "number of servers")
		algName = flag.String("alg", "", "algorithm: mtc|mtck|lazy (default mtc, mtck when -k > 1)")
		radius  = flag.Float64("radius", 5, "initial fleet spread radius around the origin")
		window  = flag.Duration("window", 2*time.Millisecond, "batch coalescing window (0 = no wait)")
		queue   = flag.Int("queue", server.DefaultQueueLimit, "bounded queue size before 429")
		ckpt    = flag.String("checkpoint", "", "checkpoint file; resumes from it when present")
		every   = flag.Int("every", 1, "steps between checkpoints")
		clamp   = flag.Bool("clamp", false, "clamp over-cap moves instead of failing the step")
	)
	flag.Parse()

	cfg := core.Config{Dim: *dim, D: *D, M: *m, Delta: *delta, K: *k}
	if *answer {
		cfg.Order = core.AnswerFirst
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	alg, err := pickAlgorithm(*algName, cfg)
	if err != nil {
		fatal(err)
	}
	opts := server.Options{
		CoalesceWindow:  *window,
		QueueLimit:      *queue,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *every,
	}
	if *clamp {
		opts.Mode = engine.Clamp
	}

	srv, resumed, err := open(cfg, alg, opts, *radius)
	if err != nil {
		fatal(err)
	}
	if resumed {
		fmt.Printf("resumed %s from %s at step %d\n", alg.Name(), *ckpt, srv.T())
	} else {
		fmt.Printf("serving %s (K=%d, dim %d) fresh\n", alg.Name(), cfg.Servers(), cfg.Dim)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		fmt.Printf("listening on %s (coalescing window %v, queue %d)\n", *addr, *window, *queue)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	<-done
	fmt.Println("\nshutting down: draining queue and writing final checkpoint")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "final checkpoint: %v\n", err)
	}
	res := srv.Finish()
	fmt.Printf("served %d steps, %s, final positions %v\n", res.Steps, res.Cost, res.Final)
}

// open resumes from the checkpoint file when it exists, otherwise starts a
// fresh session with the fleet spread on a circle of the given radius.
func open(cfg core.Config, alg core.FleetAlgorithm, opts server.Options, radius float64) (*server.Server, bool, error) {
	if opts.CheckpointPath != "" {
		if snap, err := os.ReadFile(opts.CheckpointPath); err == nil {
			srv, err := server.Resume(cfg, alg, snap, opts)
			if err != nil {
				return nil, false, fmt.Errorf("resume from %s: %w", opts.CheckpointPath, err)
			}
			return srv, true, nil
		} else if !os.IsNotExist(err) {
			return nil, false, err
		}
	}
	var starts []geom.Point
	if cfg.Servers() == 1 {
		starts = []geom.Point{geom.Zero(cfg.Dim)}
	} else {
		starts = multi.SpreadStarts(cfg, radius)
	}
	srv, err := server.New(cfg, starts, alg, opts)
	return srv, false, err
}

// pickAlgorithm maps the -alg flag to a fleet controller, defaulting to the
// paper's MtC for a single server and cluster-and-chase for a fleet.
func pickAlgorithm(name string, cfg core.Config) (core.FleetAlgorithm, error) {
	if name == "" {
		if cfg.Servers() > 1 {
			name = "mtck"
		} else {
			name = "mtc"
		}
	}
	switch name {
	case "mtc":
		if cfg.Servers() != 1 {
			return nil, fmt.Errorf("mobserve: -alg mtc is single-server; use -alg mtck for K=%d", cfg.Servers())
		}
		return core.Fleet(core.NewMtC()), nil
	case "mtck":
		return multi.NewMtCK(), nil
	case "lazy":
		return multi.NewLazyK(), nil
	default:
		return nil, fmt.Errorf("mobserve: unknown algorithm %q (mtc|mtck|lazy)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobserve:", err)
	os.Exit(1)
}
