// Command moblab is the scenario lab's CLI: "moblab sweep" runs a
// declarative experiment matrix (internal/lab) through the real serving
// stack and writes results/<stamp>/<cell>/summary.json plus the
// aggregated report, resumable per cell and parallel across CPUs;
// "moblab watch" renders a live terminal dashboard over a running
// mobserve's GET /metrics/stream SSE feed — cost rate, per-shard skew and
// layout, cap pressure, rebalance and failover events.
//
// Usage:
//
//	moblab sweep -matrix matrices/example.json
//	moblab sweep -matrix matrices/example.json -out results -stamp rerun -rerun
//	moblab watch -addr http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/lab"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	var err error
	switch os.Args[1] {
	case "sweep":
		err = sweep(ctx, os.Args[2:])
	case "watch":
		err = watch(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "moblab: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "moblab:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `moblab — the scenario lab

  moblab sweep -matrix <file> [-out results] [-stamp <name>] [-parallel N] [-rerun] [-mobserve <bin>]
      Run every cell of the matrix and write results/<stamp>/<cell>/summary.json
      plus report.json and bench.json. Resumable: cells with an existing
      summary are adopted unless -rerun.

  moblab watch [-addr http://localhost:8080] [-interval 500ms] [-points 240] [-width 64] [-height 12]
      Live dashboard over a running mobserve's GET /metrics/stream feed.`)
}

func sweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	matrix := fs.String("matrix", "", "matrix spec file (required)")
	out := fs.String("out", "results", "results root directory")
	stamp := fs.String("stamp", "", "results subdirectory name (default: UTC timestamp)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "cells run concurrently")
	rerun := fs.Bool("rerun", false, "rerun cells even when a summary already exists")
	mobserve := fs.String("mobserve", "", "mobserve binary for live cells")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	fs.Parse(args)
	if *matrix == "" {
		return fmt.Errorf("sweep: -matrix is required")
	}
	spec, err := lab.LoadSpec(*matrix)
	if err != nil {
		return err
	}
	name := *stamp
	if name == "" {
		name = time.Now().UTC().Format("20060102T150405Z")
	}
	outDir := filepath.Join(*out, name)
	r := &lab.Runner{
		Spec:        spec,
		BaseDir:     filepath.Dir(*matrix),
		OutDir:      outDir,
		Parallel:    *parallel,
		Rerun:       *rerun,
		MobserveBin: *mobserve,
	}
	if !*quiet {
		r.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	}
	report, err := r.Sweep(ctx)
	if report != nil {
		fmt.Printf("\nsweep %s: %d cells (%d ran, %d adopted) in %dms -> %s\n",
			report.Name, report.Cells, report.Ran, report.Skipped, report.ElapsedMS, outDir)
		be := report.Bench
		if be.StaticCostPerStep > 0 {
			fmt.Printf("static %.4g vs rebalance %.4g cost/step (%.1f%% saved)\n",
				be.StaticCostPerStep, be.RebalanceCostPerStep, 100*be.CostSavedFrac)
		}
		for _, b := range be.Best {
			fmt.Printf("best %-12s %s (%.4g cost/step)\n", b.Workload, b.Cell, b.CostPerStep)
		}
	}
	return err
}

func watch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "mobserve base URL")
	interval := fs.Duration("interval", 500*time.Millisecond, "redraw and /state poll interval")
	points := fs.Int("points", 240, "cost-rate history length")
	width := fs.Int("width", 64, "cost plot width")
	height := fs.Int("height", 12, "cost plot height")
	fs.Parse(args)

	d := &lab.Dashboard{Points: *points, Width: *width, Height: *height}
	sseErr := make(chan error, 1)
	go func() {
		sseErr <- lab.FollowSSE(ctx, *addr+"/metrics/stream", lab.SSEHandlers{
			Metrics:   d.ObserveMetrics,
			Rebalance: d.ObserveRebalance,
			Failover:  d.ObserveFailover,
		})
	}()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		var st wire.StateResponse
		if err := lab.GetState(ctx, *addr, &st); err == nil {
			d.ObserveState(st)
		}
		// ANSI clear-and-home, then one full frame: a flicker-free enough
		// redraw loop without any terminal dependency.
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("moblab watch %s  (%s)\n\n", *addr, time.Now().Format("15:04:05"))
		fmt.Print(d.Render())
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case err := <-sseErr:
			// The feed ended: the server shut down (nil) or refused (err).
			fmt.Println()
			return err
		case <-ticker.C:
		}
	}
}
