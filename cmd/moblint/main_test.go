package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildMoblint compiles cmd/moblint into a temp dir and returns the
// binary path.
func buildMoblint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "moblint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/moblint: %v\n%s", err, out)
	}
	return bin
}

// TestRepoIsClean is the regression gate: moblint over the whole module
// must exit 0. A new diagnostic means either a real contract violation or
// a missing //moblint:<check> <reason> annotation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	bin := buildMoblint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.." // module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("moblint ./... reported violations:\n%s", out)
	}
}

// TestViolationsAreReported proves the other half of the contract: a
// module with a violation makes moblint exit non-zero and name the
// file:line.
func TestViolationsAreReported(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a scratch module")
	}
	bin := buildMoblint(t)

	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), `package scratch

import "os"

func finalize(tmp, path string) error {
	return os.Rename(tmp, path)
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	// The scratch module has no vendor directory; make sure an inherited
	// -mod=vendor cannot leak into its go vet invocation.
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("moblint exited 0 on a module with an unsynced os.Rename\n%s", out)
	}
	if !strings.Contains(string(out), "scratch.go:6") {
		t.Fatalf("diagnostic does not name file:line:\n%s", out)
	}
	if !strings.Contains(string(out), "os.Rename finalizes a file") {
		t.Fatalf("diagnostic does not carry the atomicwrite message:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
