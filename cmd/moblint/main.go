// Command moblint checks the repository's correctness contracts at
// compile time: strict decoding of external bytes (strictdecode),
// fsync-before-rename durability of persisted artifacts (atomicwrite),
// no wall-clock or unseeded randomness in the deterministic packages
// (nodeterminism), and no known-allocating calls in annotated zero-alloc
// loops (hotpath). See internal/lint for the contracts and the
// //moblint:<check> <reason> suppression grammar.
//
// It runs two ways:
//
//	moblint ./...                      # standalone, from the module root
//	go vet -vettool=$(which moblint) ./...
//
// Standalone invocation re-executes itself through go vet, which supplies
// the type-checked compilation units; the exit status is non-zero when
// any unsuppressed diagnostic is reported, and each diagnostic carries a
// file:line position.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	// go vet drives its -vettool with -V=full (version handshake), -flags
	// (flag discovery), and one JSON .cfg per compilation unit; anything
	// else is a human asking for a standalone run over package patterns.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers()...) // never returns
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// standalone re-invokes this binary through go vet, which handles package
// loading, caching, and per-unit type-checking exactly as CI's other vet
// steps do.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moblint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "moblint:", err)
		return 1
	}
	return 0
}
