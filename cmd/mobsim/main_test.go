package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"mtc", "lazy", "follow", "greedy", "movetomin", "coinflip"} {
		alg, err := algorithmByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty algorithm name", name)
		}
	}
	if _, err := algorithmByName("bogus", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBuildInstanceGenerated(t *testing.T) {
	in, err := buildInstance("", "hotspot", 50, 2, 2, 1, 0.5, false, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.T() != 50 || in.Config.Dim != 2 {
		t.Fatalf("shape: T=%d dim=%d", in.T(), in.Config.Dim)
	}
	rmin, rmax := in.RequestRange()
	if rmin != 3 || rmax != 3 {
		t.Fatalf("requests not propagated: %d..%d", rmin, rmax)
	}
}

func TestBuildInstanceAnswerFirst(t *testing.T) {
	in, err := buildInstance("", "uniform", 10, 1, 1, 1, 0, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Config.Order != core.AnswerFirst {
		t.Fatal("answer-first flag ignored")
	}
}

func TestBuildInstanceRejectsBadConfig(t *testing.T) {
	if _, err := buildInstance("", "uniform", 10, 0, 1, 1, 0, false, 1, 1); err == nil {
		t.Fatal("dim=0 accepted")
	}
	if _, err := buildInstance("", "nope", 10, 1, 1, 1, 0, false, 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBuildInstanceFromTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	in, err := buildInstance("", "burst", 20, 2, 2, 1, 0.5, false, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeTrace(f, in); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := buildInstance(path, "", 0, 0, 0, 0, 0, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.T() != in.T() || !got.Config.Equal(in.Config) {
		t.Fatal("trace round trip mismatch")
	}
}
