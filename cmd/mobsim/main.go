// Command mobsim runs one Mobile Server simulation and reports the costs,
// the offline-optimum bracket, and the resulting competitive-ratio
// estimate, optionally with an ASCII plot of the per-step costs. With -k it
// runs the multi-server fleet extension on the same workload.
//
// Usage:
//
//	mobsim -workload hotspot -T 500 -dim 2 -D 4 -delta 0.5 -alg mtc
//	mobsim -workload burst -alg lazy -plot
//	mobsim -workload clusters -k 4                # fleet of 4 servers
//	mobsim -trace instance.json -alg mtc          # replay a recorded instance
//	mobsim -list                                  # show workloads and algorithms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/asciiplot"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/multi"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		wlName    = flag.String("workload", "hotspot", "workload: uniform|hotspot|clusters|burst")
		algName   = flag.String("alg", "mtc", "algorithm: mtc|lazy|follow|greedy|movetomin|coinflip")
		T         = flag.Int("T", 500, "sequence length")
		dim       = flag.Int("dim", 2, "dimension (1 or 2 for OPT bounds; higher allowed)")
		D         = flag.Float64("D", 2, "page weight D >= 1")
		m         = flag.Float64("m", 1, "offline movement cap m")
		delta     = flag.Float64("delta", 0.5, "augmentation delta in [0,1]")
		answer    = flag.Bool("answer-first", false, "serve requests before moving")
		requests  = flag.Int("r", 1, "requests per step")
		k         = flag.Int("k", 1, "number of servers (k>1 runs the fleet extension: alg mtc|lazy)")
		seed      = flag.Uint64("seed", 1, "random seed")
		plot      = flag.Bool("plot", false, "ASCII plot of cumulative costs")
		tracePath = flag.String("trace", "", "replay an instance from JSON instead of generating")
		saveTrace = flag.String("save", "", "save the generated instance to JSON")
		list      = flag.Bool("list", false, "list workloads and algorithms")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, g := range workload.Registry() {
			fmt.Printf("  %s\n", g.Name())
		}
		fmt.Println("algorithms: mtc lazy follow greedy movetomin coinflip")
		fmt.Println("fleet (-k > 1): mtc lazy")
		return
	}

	in, err := buildInstance(*tracePath, *wlName, *T, *dim, *D, *m, *delta, *answer, *requests, *seed)
	if err != nil {
		fatal(err)
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(f, in); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("saved instance to %s\n", *saveTrace)
	}

	if *k > 1 {
		runFleet(in, *algName, *k, *plot)
		return
	}

	alg, err := algorithmByName(*algName, *seed)
	if err != nil {
		fatal(err)
	}
	curve := &costCurve{}
	opts := sim.RunOptions{}
	if *plot {
		opts.Observers = []sim.Observer{curve}
	}
	res, err := sim.Run(in, alg, opts)
	if err != nil {
		fatal(err)
	}
	rmin, rmax := in.RequestRange()
	fmt.Printf("instance: T=%d dim=%d D=%g m=%g delta=%g order=%s r=[%d,%d]\n",
		in.T(), in.Config.Dim, in.Config.D, in.Config.M, in.Config.Delta, in.Config.Order, rmin, rmax)
	fmt.Printf("%-12s %s  (max step %.4g, cap %.4g)\n", res.Algorithm+":", res.Cost, res.MaxMove, in.Config.OnlineCap())

	est, err := offline.Best(in, offline.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("OPT bracket: [%.6g, %.6g]  (lower: %s, upper: %s)\n", est.Lower, est.Upper, est.LowerMethod, est.UpperMethod)
	fmt.Printf("ratio:       [%.4g, %.4g]\n", sim.Ratio(res.Cost.Total(), est.Upper), sim.Ratio(res.Cost.Total(), est.Lower))

	if *plot {
		fmt.Print(curve.render())
	}
}

// runFleet replays the generated request sequence against a fleet of k
// servers through the shared engine.
func runFleet(in *core.Instance, algName string, k int, plot bool) {
	cfg := in.Config
	cfg.K = k
	fin := &core.FleetInstance{Config: cfg, Starts: multi.SpreadStarts(cfg, 2*cfg.M*float64(k)), Steps: in.Steps}
	var alg core.FleetAlgorithm
	switch algName {
	case "mtc":
		alg = multi.NewMtCK()
	case "lazy":
		alg = multi.NewLazyK()
	default:
		fatal(fmt.Errorf("fleet mode supports alg mtc|lazy, got %q", algName))
	}
	curve := &costCurve{}
	opts := engine.Options{}
	if plot {
		opts.Observers = []engine.Observer{curve}
	}
	res, err := engine.Run(fin, alg, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: T=%d dim=%d D=%g m=%g delta=%g K=%d\n",
		fin.T(), cfg.Dim, cfg.D, cfg.M, cfg.Delta, cfg.Servers())
	fmt.Printf("%-12s %s  (max step %.4g, cap %.4g)\n", res.Algorithm+":", res.Cost, res.MaxMove, cfg.OnlineCap())
	if plot {
		fmt.Print(curve.render())
	}
}

// costCurve is an engine observer accumulating the cumulative serve and
// move cost series for the ASCII plot.
type costCurve struct {
	xs, serve, move []float64
	cumS, cumM      float64
}

func (c *costCurve) Observe(info engine.StepInfo) {
	c.cumS += info.Cost.Serve
	c.cumM += info.Cost.Move
	c.xs = append(c.xs, float64(info.T+1))
	c.serve = append(c.serve, c.cumS)
	c.move = append(c.move, c.cumM)
}

func (c *costCurve) render() string {
	return asciiplot.Plot{Title: "cumulative cost", Width: 70, Height: 16}.Render([]asciiplot.Series{
		{Name: "serve", X: c.xs, Y: c.serve},
		{Name: "move (D-weighted)", X: c.xs, Y: c.move},
	})
}

func buildInstance(tracePath, wlName string, T, dim int, D, m, delta float64, answer bool, requests int, seed uint64) (*core.Instance, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return traceio.ReadInstance(f)
	}
	order := core.MoveFirst
	if answer {
		order = core.AnswerFirst
	}
	cfg := core.Config{Dim: dim, D: D, M: m, Delta: delta, Order: order}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := workload.ByName(wlName)
	if err != nil {
		return nil, err
	}
	switch g := gen.(type) {
	case workload.Uniform:
		g.Requests = requests
		gen = g
	case workload.Hotspot:
		g.Requests = requests
		gen = g
	case workload.Clusters:
		g.Requests = requests
		gen = g
	}
	return gen.Generate(xrand.New(seed), cfg, T), nil
}

func algorithmByName(name string, seed uint64) (core.Algorithm, error) {
	switch name {
	case "mtc":
		return core.NewMtC(), nil
	case "lazy":
		return baseline.NewLazy(), nil
	case "follow":
		return baseline.NewFollow(), nil
	case "greedy":
		return baseline.NewGreedy(), nil
	case "movetomin":
		return baseline.NewMoveToMin(), nil
	case "coinflip":
		return baseline.NewCoinFlip(xrand.New(seed ^ 0xc01f)), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// writeTrace saves an instance in the traceio JSON schema.
func writeTrace(w io.Writer, in *core.Instance) error {
	return traceio.WriteInstance(w, in)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobsim:", err)
	os.Exit(1)
}
