// Command mobtrace generates, inspects, and converts Mobile Server
// workload traces.
//
// Usage:
//
//	mobtrace gen -workload clusters -T 1000 -o trace.json
//	mobtrace info trace.json
//	mobtrace adversary -theorem 1 -T 400 -o hard.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "adversary":
		cmdAdversary(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mobtrace gen       -workload <name> [-T n] [-dim d] [-D w] [-m cap] [-delta x] [-r k] [-answer-first] [-seed s] -o file.json
  mobtrace info      <file.json>
  mobtrace adversary -theorem <1|2|3> [-T n] [-D w] [-delta x] [-r k] [-seed s] -o file.json`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wlName := fs.String("workload", "hotspot", "workload name")
	T := fs.Int("T", 1000, "length")
	dim := fs.Int("dim", 2, "dimension")
	D := fs.Float64("D", 2, "page weight")
	m := fs.Float64("m", 1, "movement cap")
	delta := fs.Float64("delta", 0.5, "augmentation")
	r := fs.Int("r", 1, "requests per step")
	answer := fs.Bool("answer-first", false, "serve requests before moving")
	seed := fs.Uint64("seed", 1, "seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	gen, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	switch g := gen.(type) {
	case workload.Uniform:
		g.Requests = *r
		gen = g
	case workload.Hotspot:
		g.Requests = *r
		gen = g
	case workload.Clusters:
		g.Requests = *r
		gen = g
	}
	order := core.MoveFirst
	if *answer {
		order = core.AnswerFirst
	}
	cfg := core.Config{Dim: *dim, D: *D, M: *m, Delta: *delta, Order: order}
	in := gen.Generate(xrand.New(*seed), cfg, *T)
	writeInstance(*out, in)
}

func cmdAdversary(args []string) {
	fs := flag.NewFlagSet("adversary", flag.ExitOnError)
	theorem := fs.Int("theorem", 1, "lower-bound construction: 1, 2, or 3")
	T := fs.Int("T", 400, "length")
	D := fs.Float64("D", 1, "page weight")
	delta := fs.Float64("delta", 0.5, "augmentation (theorem 2)")
	r := fs.Int("r", 1, "requests per step (theorems 2: Rmax, 3: r)")
	seed := fs.Uint64("seed", 1, "seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	rng := xrand.New(*seed)
	var in *core.Instance
	switch *theorem {
	case 1:
		g := adversary.Theorem1(adversary.Theorem1Params{T: *T, D: *D, M: 1, Dim: 1}, rng)
		in = g.Instance
	case 2:
		g := adversary.Theorem2(adversary.Theorem2Params{T: *T, D: *D, M: 1, Delta: *delta, Rmin: 1, Rmax: *r, Dim: 1}, rng)
		in = g.Instance
	case 3:
		g := adversary.Theorem3(adversary.Theorem3Params{T: *T, D: *D, M: 1, R: *r, Dim: 1}, rng)
		in = g.Instance
	default:
		fatal(fmt.Errorf("unknown theorem %d", *theorem))
	}
	writeInstance(*out, in)
}

func cmdInfo(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := traceio.ReadInstance(f)
	if err != nil {
		fatal(err)
	}
	rmin, rmax := in.RequestRange()
	b := in.Bounds()
	fmt.Printf("T=%d dim=%d D=%g m=%g delta=%g order=%s\n",
		in.T(), in.Config.Dim, in.Config.D, in.Config.M, in.Config.Delta, in.Config.Order)
	fmt.Printf("requests: total=%d per-step=[%d,%d]\n", in.TotalRequests(), rmin, rmax)
	fmt.Printf("bounds: %v .. %v (diagonal %.4g)\n", b.Min, b.Max, b.Diagonal())
	// Per-step request-count distribution.
	counts := make([]float64, in.T())
	for t, s := range in.Steps {
		counts[t] = float64(len(s.Requests))
	}
	sum := stats.Summarize(counts)
	fmt.Printf("r per step: mean=%.3g median=%.3g max=%.3g\n", sum.Mean, sum.Median, sum.Max)
}

func writeInstance(path string, in *core.Instance) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := traceio.WriteInstance(f, in); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (T=%d, %d requests)\n", path, in.T(), in.TotalRequests())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobtrace:", err)
	os.Exit(1)
}
