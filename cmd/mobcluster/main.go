// Command mobcluster runs one node of the distributed serving layer: a
// shard worker hosting per-shard engine sessions behind the NDJSON
// streaming transport, or the coordinator that fronts a fleet of such
// workers with the ordinary mobserve API (/step, /stream, /metrics,
// /state, /snapshot, /metrics/stream).
//
// Every node of one cluster must be started with the same spatial
// configuration flags (-dim -D -m -delta -k -shards -span -answer-first):
// the partition defines which worker path owns which shard, and the
// coordinator refuses a fleet whose shards disagree on the step counter.
//
// Quickstart — one coordinator and two workers on loopback:
//
//	mobcluster -role worker -addr :9001 -shards 2 -k 2 -ckpt-dir /tmp/w1 &
//	mobcluster -role worker -addr :9002 -shards 2 -k 2 -ckpt-dir /tmp/w2 &
//	mobcluster -role coordinator -addr :8080 -shards 2 -k 2 \
//	    -workers localhost:9001,localhost:9002
//
//	curl -X POST localhost:8080/step -d '{"requests":[[3,4],[-3,1]]}'
//	curl localhost:8080/state        # includes the shard→worker assignment
//	curl -N localhost:8080/metrics/stream   # failovers ride as SSE events
//
// Kill one worker and keep stepping: the coordinator rehomes its shards
// onto the survivor from their last checkpoints (point both workers'
// -ckpt-dir at shared storage for that), emits "failover" events on the
// SSE feed, and loses no step. Workers print their resolved listen
// address on startup, so -addr :0 works for scripted tests.
//
// Pipelined ingestion: start every node with -window W (> 1) to keep up
// to W steps in flight per shard instead of paying one round trip — and
// one checkpoint fsync — per step; workers additionally take
// -commit-every G to cover up to G steps per fsync (group commit). The
// failover guarantees are unchanged at every crash offset inside the
// window: workers ack only group-committed steps and re-serve their ack
// ring at reconnect, so the coordinator recovers executed in-flight steps
// exactly and resends only the true suffix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		role    = flag.String("role", "", "node role: coordinator|worker (required)")
		addr    = flag.String("addr", ":8080", "listen address (:0 picks a free port; the resolved address is printed)")
		dim     = flag.Int("dim", 2, "dimension of the space")
		D       = flag.Float64("D", 2, "page weight D >= 1")
		m       = flag.Float64("m", 1, "offline movement cap m")
		delta   = flag.Float64("delta", 0.5, "augmentation delta in [0,1]")
		answer  = flag.Bool("answer-first", false, "serve requests before moving")
		k       = flag.Int("k", 1, "servers per shard")
		shards  = flag.Int("shards", 2, "spatial shards along axis 0")
		span    = flag.Float64("span", 25, "half-width of the sharded interval and of fresh fleet placement")
		queue   = flag.Int("queue", server.DefaultQueueLimit, "bounded queue size before refusing batches")
		algName = flag.String("alg", "", "worker algorithm: mtc|mtck|lazy (default mtck)")
		clamp   = flag.Bool("clamp", false, "worker: clamp over-cap moves instead of failing the step")
		ckptDir = flag.String("ckpt-dir", "", "worker: per-shard checkpoint directory (required; share it between workers that cover for each other)")

		wireOpt = flag.String("wire", "auto", "shard-stream encoding: auto (negotiate binary, fall back to ndjson) | binary (worker: grant it; coordinator: require it) | ndjson (pin)")

		window      = flag.Int("window", 1, "pipelined ingestion window: coordinator keeps up to this many steps in flight per shard; worker grants windows up to it (1 = lockstep)")
		commitEvery = flag.Int("commit-every", 1, "worker: group-commit cadence — one fsynced checkpoint covers up to this many steps before their acks release (1 = checkpoint every step)")

		workers   = flag.String("workers", "", "coordinator: comma-separated worker addresses (required)")
		coalesce  = flag.Duration("coalesce", 2*time.Millisecond, "coordinator: batch coalescing window")
		heartbeat = flag.Duration("heartbeat", time.Second, "coordinator: worker liveness ping interval (0 disables)")
		attempts  = flag.Int("attempts", 0, "coordinator: dial attempts per worker before moving on (0 = default)")
		backoff   = flag.Duration("backoff", 0, "coordinator: base reconnect backoff (0 = default)")
	)
	flag.Parse()

	cfg := core.Config{Dim: *dim, D: *D, M: *m, Delta: *delta, K: *k,
		Partition: core.UniformPartition(*shards, *span)}
	if *answer {
		cfg.Order = core.AnswerFirst
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	switch *wireOpt {
	case "auto", "binary", "ndjson":
	default:
		fatal(fmt.Errorf("unknown -wire policy %q (auto|binary|ndjson)", *wireOpt))
	}

	if *window < 1 {
		fatal(fmt.Errorf("-window must be >= 1, got %d", *window))
	}
	if *commitEvery < 1 {
		fatal(fmt.Errorf("-commit-every must be >= 1, got %d", *commitEvery))
	}

	switch *role {
	case "worker":
		runWorker(cfg, *addr, *algName, *ckptDir, *span, *clamp, *queue, *wireOpt, *window, *commitEvery)
	case "coordinator":
		runCoordinator(cfg, *addr, *workers, *coalesce, *heartbeat, *attempts, *backoff, *queue, *wireOpt, *window)
	case "":
		fatal(errors.New("-role is required: coordinator|worker"))
	default:
		fatal(fmt.Errorf("unknown role %q (coordinator|worker)", *role))
	}
}

func runWorker(cfg core.Config, addr, algName, ckptDir string, span float64, clamp bool, queue int, wireOpt string, window, commitEvery int) {
	newAlg, err := pickAlgorithm(algName, cfg)
	if err != nil {
		fatal(err)
	}
	opts := cluster.WorkerOptions{
		NewAlg:        newAlg,
		CheckpointDir: ckptDir,
		Span:          span,
		QueueLimit:    queue,
		MaxWindow:     window,
		CommitEvery:   commitEvery,
	}
	// auto and binary both grant a coordinator's binary request (the
	// worker side never initiates); ndjson pins the hosted streams.
	if wireOpt == "ndjson" {
		opts.Wire = wire.WireNDJSON
	}
	if clamp {
		opts.Mode = engine.Clamp
	}
	w, err := cluster.NewWorker(cfg, opts)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worker listening on %s (%d shards × K=%d, checkpoints in %s)\n",
		ln.Addr(), cfg.Partition.Shards(), cfg.Servers(), ckptDir)
	serve(&http.Server{Handler: w}, ln, func() {
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mobcluster: worker close:", err)
		}
	})
}

func runCoordinator(cfg core.Config, addr, workers string, coalesce, heartbeat time.Duration, attempts int, backoff time.Duration, queue int, wireOpt string, window int) {
	if workers == "" {
		fatal(errors.New("-role coordinator requires -workers"))
	}
	copts := cluster.CoordinatorOptions{
		Workers:     strings.Split(workers, ","),
		Heartbeat:   heartbeat,
		MaxAttempts: attempts,
		BaseBackoff: backoff,
		Window:      window,
	}
	switch wireOpt {
	case "binary":
		copts.Wire = wire.WireBinary // require: fail loudly on old workers
	case "ndjson":
		copts.Wire = wire.WireNDJSON
	}
	svc, err := cluster.NewService(cfg, copts, protocol.Options{
		CoalesceWindow: coalesce,
		QueueLimit:     queue,
		Window:         window,
	})
	if err != nil {
		fatal(err)
	}
	srv := server.NewFromService(cfg, svc)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("coordinator listening on %s, serving %s at step %d across %d workers\n",
		ln.Addr(), srv.Algorithm(), srv.T(), len(copts.Workers))
	serve(&http.Server{Handler: srv.Handler()}, ln, func() {
		// Close ends Watch subscriptions first so SSE handlers unblock, then
		// Finish closes the worker connections; the workers stay up,
		// resumable by the next coordinator.
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mobcluster: coordinator close:", err)
		}
		res := srv.Finish()
		fmt.Printf("forwarded %d steps, %s\n", res.Steps, res.Cost)
	})
}

// serve runs the HTTP server on ln until SIGINT/SIGTERM, then drains the
// node (drain runs before the listener shuts down, mirroring mobserve's
// close-service-first ordering).
func serve(httpSrv *http.Server, ln net.Listener, drain func()) {
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	<-done
	fmt.Println("\nshutting down")
	drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mobcluster: http shutdown:", err)
	}
}

// pickAlgorithm mirrors mobserve's algorithm table, defaulting to the
// fleet controller (cluster shards usually run K > 1).
func pickAlgorithm(name string, cfg core.Config) (func() core.FleetAlgorithm, error) {
	if name == "" {
		name = "mtck"
	}
	switch name {
	case "mtc":
		if cfg.Servers() != 1 {
			return nil, fmt.Errorf("mobcluster: -alg mtc is single-server; use -alg mtck for K=%d", cfg.Servers())
		}
		return func() core.FleetAlgorithm { return core.Fleet(core.NewMtC()) }, nil
	case "mtck":
		return func() core.FleetAlgorithm { return multi.NewMtCK() }, nil
	case "lazy":
		return func() core.FleetAlgorithm { return multi.NewLazyK() }, nil
	default:
		return nil, fmt.Errorf("mobcluster: unknown algorithm %q (mtc|mtck|lazy)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mobcluster:", err)
	os.Exit(1)
}
