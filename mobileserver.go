// Package mobileserver is a Go implementation and empirical reproduction
// of “The Mobile Server Problem” (Feldkord & Meyer auf der Heide,
// SPAA 2017): a single mobile server holding a data page moves through
// Euclidean space under a per-step movement cap m, paying D·distance for
// movement and distance for every request it serves.
//
// The package re-exports the library's stable surface:
//
//   - the problem model (Config, Instance, Step, Cost) and the online
//     Algorithm interface, plus the fleet generalization (FleetInstance,
//     FleetAlgorithm) where K servers share the request stream,
//   - the paper's Move-to-Center algorithm (NewMtC), its Moving Client
//     specialization (NewFollowAgent), and the fleet cluster-and-chase
//     controller (NewMtCK),
//   - the simulator, both batch (Run, RunFleet) and streaming
//     (NewSession/Session.Step for request batches that arrive one step
//     at a time, with pluggable per-step Observers),
//   - offline-optimum estimation (EstimateOPT) and a one-call
//     competitive-ratio measurement (MeasureRatio).
//
// Implementation packages live under internal/; see DESIGN.md for the
// system inventory and the Engine/Session architecture.
package mobileserver

import (
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Core model types.
type (
	// Point is a position in ℝ^d.
	Point = geom.Point
	// Config holds the instance parameters (dimension, D, m, δ, order).
	Config = core.Config
	// Instance is a start position plus a request sequence.
	Instance = core.Instance
	// Step is one time step's request batch.
	Step = core.Step
	// Cost splits the objective into movement and serving.
	Cost = core.Cost
	// Algorithm is the online algorithm interface driven by Run.
	Algorithm = core.Algorithm
	// Result summarizes a simulation run.
	Result = sim.Result
	// RunOptions configures cap enforcement and tracing.
	RunOptions = sim.RunOptions
	// OPTEstimate brackets the offline optimum: Lower ≤ OPT ≤ Upper.
	OPTEstimate = offline.Estimate
	// AgentConfig and AgentInstance describe the Moving Client variant.
	AgentConfig = agent.Config
	// AgentInstance is a Moving Client input (agent path + config).
	AgentInstance = agent.Instance

	// Session is a streaming single-server simulation: feed request
	// batches with Step, close with Finish.
	Session = sim.Session
	// Observer is a pluggable per-step hook notified by sessions.
	Observer = engine.Observer
	// ObserverFunc adapts a closure to an Observer.
	ObserverFunc = engine.Func
	// StepInfo is the per-step snapshot handed to observers.
	StepInfo = engine.StepInfo

	// FleetInstance is a multi-server input (Config.K servers).
	FleetInstance = core.FleetInstance
	// FleetAlgorithm is the fleet-aware online interface; K = 1 is the
	// paper's single-server model.
	FleetAlgorithm = core.FleetAlgorithm
	// FleetOptions configures a fleet session or run.
	FleetOptions = engine.Options
	// FleetResult summarizes a fleet run.
	FleetResult = engine.Result
	// FleetSession is a streaming multi-server simulation.
	FleetSession = engine.Session
)

// Serve orders (see Config.Order).
const (
	// MoveFirst moves the server before serving (the paper's default).
	MoveFirst = core.MoveFirst
	// AnswerFirst serves before moving (Theorems 3 and 7).
	AnswerFirst = core.AnswerFirst
)

// NewPoint returns a point with the given coordinates.
func NewPoint(coords ...float64) Point { return geom.NewPoint(coords...) }

// NewMtC returns the paper's deterministic Move-to-Center algorithm.
func NewMtC() Algorithm { return core.NewMtC() }

// NewFollowAgent returns the Moving Client specialization of MtC
// (Theorem 10): move min(cap, d(P, A)/D) toward the agent. Use it with
// RunAgent.
func NewFollowAgent() *agent.Follow { return agent.NewFollow() }

// Run executes an online algorithm on an instance, enforcing the movement
// cap (1+δ)m, and returns the accumulated cost. It is equivalent to a
// NewSession followed by one Step per instance step and Finish.
func Run(in *Instance, alg Algorithm, opts RunOptions) (*Result, error) {
	return sim.Run(in, alg, opts)
}

// NewSession starts a streaming run of the algorithm: request batches are
// fed one step at a time with Session.Step, so the sequence never needs to
// be materialized as an Instance and memory stays constant regardless of
// stream length.
func NewSession(cfg Config, start Point, alg Algorithm, opts RunOptions) (*Session, error) {
	return sim.NewSession(cfg, start, alg, opts)
}

// RestoreSession reopens a single-server streaming session from bytes
// produced by Session.Snapshot, continuing the run exactly where the
// snapshot was taken (position, accumulated cost, step counter, algorithm
// state). Pass a fresh algorithm instance of the same kind and the original
// configuration.
func RestoreSession(cfg Config, alg Algorithm, snapshot []byte, opts RunOptions) (*Session, error) {
	return sim.RestoreSession(cfg, alg, snapshot, opts)
}

// RestoreFleetSession is RestoreSession for fleet sessions: it resumes a
// run from FleetSession.Snapshot bytes, restoring every server position and
// the accumulated counters bit-exactly.
func RestoreFleetSession(cfg Config, alg FleetAlgorithm, snapshot []byte, opts FleetOptions) (*FleetSession, error) {
	return engine.Restore(cfg, alg, snapshot, opts)
}

// Fleet lifts a single-server Algorithm to a FleetAlgorithm of size 1.
func Fleet(alg Algorithm) FleetAlgorithm { return core.Fleet(alg) }

// NewMtCK returns the fleet generalization of Move-to-Center
// (cluster-and-chase): requests are assigned to their nearest server and
// each server runs the MtC rule on its share.
func NewMtCK() FleetAlgorithm { return multi.NewMtCK() }

// NewLazyK returns the never-moving fleet baseline.
func NewLazyK() FleetAlgorithm { return multi.NewLazyK() }

// SpreadStarts places cfg.Servers() servers evenly on a circle (a segment
// in 1-D) of the given radius around the origin.
func SpreadStarts(cfg Config, radius float64) []Point { return multi.SpreadStarts(cfg, radius) }

// RunFleet executes a fleet algorithm on a multi-server instance,
// enforcing the per-server movement cap.
func RunFleet(in *FleetInstance, alg FleetAlgorithm, opts FleetOptions) (*FleetResult, error) {
	return engine.Run(in, alg, opts)
}

// NewFleetSession starts a streaming fleet run with one start position per
// server (len(starts) == cfg.Servers()).
func NewFleetSession(cfg Config, starts []Point, alg FleetAlgorithm, opts FleetOptions) (*FleetSession, error) {
	return engine.NewSession(cfg, starts, alg, opts)
}

// RunAgent executes a Moving Client algorithm on an agent instance by
// reducing it to the core model (one request per step at the agent's
// position).
func RunAgent(in *AgentInstance, alg *agent.Follow, opts RunOptions) (*Result, error) {
	return sim.Run(in.ToCore(), agent.Adapt(in, alg), opts)
}

// EstimateOPT brackets the offline optimum of the instance using the grid
// dynamic programs (certified lower bound, dimensions 1 and 2) and
// greedy/descent feasible solutions (upper bound).
func EstimateOPT(in *Instance) (OPTEstimate, error) {
	return offline.Best(in, offline.Options{})
}

// RatioReport is the outcome of MeasureRatio.
type RatioReport struct {
	// AlgorithmCost is the online algorithm's total cost.
	AlgorithmCost float64
	// Opt brackets the offline optimum.
	Opt OPTEstimate
	// RatioLow = cost/Opt.Upper underestimates the competitive ratio;
	// RatioHigh = cost/Opt.Lower overestimates it (NaN if no lower bound).
	RatioLow, RatioHigh float64
}

// MeasureRatio runs the algorithm and reports its cost relative to the
// offline-optimum bracket — the one-call entry point for "how competitive
// is this algorithm on this workload".
func MeasureRatio(in *Instance, alg Algorithm) (RatioReport, error) {
	res, err := sim.Run(in, alg, sim.RunOptions{})
	if err != nil {
		return RatioReport{}, err
	}
	est, err := offline.Best(in, offline.Options{})
	if err != nil {
		return RatioReport{}, err
	}
	return RatioReport{
		AlgorithmCost: res.Cost.Total(),
		Opt:           est,
		RatioLow:      sim.Ratio(res.Cost.Total(), est.Upper),
		RatioHigh:     sim.Ratio(res.Cost.Total(), est.Lower),
	}, nil
}

// RandomWalkPath returns a T-step agent path that takes a random direction
// each step at up to the given speed, for Moving Client scenarios.
func RandomWalkPath(seed uint64, origin Point, T int, speed float64) []Point {
	return agent.RandomWalk(xrand.New(seed), origin, T, speed)
}

// DriftPath returns a T-step agent path heading in one random direction at
// full speed with the given relative jitter — a convoy on a road.
func DriftPath(seed uint64, origin Point, T int, speed, jitter float64) []Point {
	return agent.Drift(xrand.New(seed), origin, T, speed, jitter)
}

// CommuterPath returns a T-step agent path shuttling between origin and
// target at full speed.
func CommuterPath(origin, target Point, T int, speed float64) []Point {
	return agent.Commuter(origin, target, T, speed)
}

// PatrolPath returns a T-step agent path circling center with the given
// radius (dimension >= 2), entering the circle from origin first.
func PatrolPath(origin, center Point, radius float64, T int, speed float64) []Point {
	return agent.Patrol(origin, center, radius, T, speed)
}
