#!/bin/sh
# bench.sh: run the reproduction benchmark suite (BenchmarkE*), the
# sharded-vs-unsharded serving benchmark (BenchmarkRouterStep), the
# transport comparison (BenchmarkStreamVsHTTP), the stream-encoding
# comparison (BenchmarkStreamBinaryVsNDJSON), the shard-layout
# comparison (BenchmarkRebalanceVsStatic), the multi-process serving
# comparison (BenchmarkClusterVsLocal), and the pipelined-ingestion
# comparison (BenchmarkClusterPipelinedVsLockstep) and emit a
# machine-readable JSON summary, so the bench trajectory is tracked as a
# CI artifact instead of scrolling away in logs. The summary carries five
# derived entries: "stream_vs_http" (per-batch latency of each transport and the
# speedup of pipelined NDJSON ingestion over per-request HTTP),
# "stream_binary_vs_ndjson" (per-frame latency of each stream encoding,
# the speedup of binary frames over NDJSON, and the binary path's
# allocs/op — the zero-copy pipeline's headline numbers),
# "rebalance_vs_static" (per-step serving cost of the drifting-hotspot
# workload under a static vs a dynamically rebalanced shard layout, and
# the fraction of cost the rebalancer saves), "cluster_vs_local"
# (per-step latency of the in-process sharded server vs a coordinator
# forwarding to worker-hosted shards over loopback, pinning the
# forwarding overhead of the cluster tier), and
# "cluster_pipelined_vs_lockstep" (per-step latency of the cluster tier
# in lockstep vs with a pipelined ingestion window and group-commit
# checkpointing, the speedup the window buys, and the negotiated window
# depth). A sixth entry, "lab_matrix", is not awk-derived at all: the
# scenario lab's committed example matrix (matrices/example.json) is
# swept via cmd/moblab — in-process cells, so the numbers are
# byte-deterministic per seed — and its aggregated cross-cell bench
# entry (paired static-vs-threshold cost/step, best cell per workload)
# is spliced into the summary verbatim.
#
# The script fails (non-zero exit) when any expected summary entry is
# missing from the output — a benchmark that silently stopped emitting
# is a regression, not a gap in the report.
#
#   ./scripts/bench.sh [out.json]        # default out: BENCH_<utc-stamp>.json
#   BENCHTIME=100x ./scripts/bench.sh    # override -benchtime (default 1x
#                                        # for the E-suite, 50x for the
#                                        # router scaling curve, 300x for
#                                        # the transport comparisons, 3x for
#                                        # the full-run layout comparison)
#
# Run from the repository root.
set -eu

out="${1:-BENCH_$(date -u +%Y%m%d-%H%M%S).json}"
raw="$(mktemp)"
lab_dir="$(mktemp -d)"
trap 'rm -f "$raw"; rm -rf "$lab_dir"' EXIT

# Sweep the committed example matrix first: 12 in-process cells, a few
# hundred milliseconds, and the aggregate feeds the "lab_matrix" entry.
go run ./cmd/moblab sweep -matrix matrices/example.json -out "$lab_dir" -stamp bench -q

go test -run '^$' -bench 'BenchmarkE' -benchtime "${BENCHTIME:-1x}" . | tee "$raw"
go test -run '^$' -bench 'BenchmarkRouterStep' -benchtime "${BENCHTIME:-50x}" ./internal/shard/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkStreamVsHTTP' -benchtime "${BENCHTIME:-300x}" ./internal/server/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkStreamBinaryVsNDJSON' -benchtime "${BENCHTIME:-300x}" ./internal/server/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkRebalanceVsStatic' -benchtime "${BENCHTIME:-3x}" ./internal/shard/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkClusterVsLocal' -benchtime "${BENCHTIME:-200x}" ./internal/cluster/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkClusterPipelinedVsLockstep' -benchtime "${BENCHTIME:-200x}" ./internal/cluster/ | tee -a "$raw"

# Convert `BenchmarkName-P   N   T ns/op [extras...]` lines into a JSON
# document. The -P CPU suffix is stripped from the name. The comparison
# benchmarks additionally feed the derived summary objects.
awk -v go_version="$(go version)" -v stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
	printf "{\n  \"go\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", go_version, stamp
	n = 0
	http_ns = ""; stream_ns = ""
	ndjson_ns = ""; binary_ns = ""; binary_allocs = ""
	static_cost = ""; rebalance_cost = ""
	local_ns = ""; cluster_ns = ""
	lockstep_ns = ""; pipelined_ns = ""; pipe_window = ""
}
/^Benchmark/ && $4 == "ns/op" {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = $3
	extra = ""
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op")      extra = extra sprintf(", \"bytes_per_op\": %s", $i)
		if ($(i+1) == "allocs/op") {
			extra = extra sprintf(", \"allocs_per_op\": %s", $i)
			if (name ~ /BenchmarkStreamBinaryVsNDJSON\/binary$/) binary_allocs = $i
		}
		if ($(i+1) == "req/s")     extra = extra sprintf(", \"req_per_sec\": %s", $i)
		if ($(i+1) == "window") {
			extra = extra sprintf(", \"window\": %s", $i)
			if (name ~ /BenchmarkClusterPipelinedVsLockstep\/pipelined$/) pipe_window = $i
		}
		if ($(i+1) == "cost/step") {
			extra = extra sprintf(", \"cost_per_step\": %s", $i)
			if (name ~ /BenchmarkRebalanceVsStatic\/static$/)    static_cost = $i
			if (name ~ /BenchmarkRebalanceVsStatic\/rebalance$/) rebalance_cost = $i
		}
	}
	if (name ~ /BenchmarkStreamVsHTTP\/http$/)   http_ns = ns
	if (name ~ /BenchmarkStreamVsHTTP\/stream$/) stream_ns = ns
	if (name ~ /BenchmarkStreamBinaryVsNDJSON\/ndjson$/) ndjson_ns = ns
	if (name ~ /BenchmarkStreamBinaryVsNDJSON\/binary$/) binary_ns = ns
	if (name ~ /BenchmarkClusterVsLocal\/local$/)   local_ns = ns
	if (name ~ /BenchmarkClusterVsLocal\/cluster$/) cluster_ns = ns
	if (name ~ /BenchmarkClusterPipelinedVsLockstep\/lockstep$/)  lockstep_ns = ns
	if (name ~ /BenchmarkClusterPipelinedVsLockstep\/pipelined$/) pipelined_ns = ns
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}", name, iters, ns, extra
}
END {
	printf "\n  ]"
	if (http_ns != "" && stream_ns != "" && stream_ns + 0 > 0) {
		printf ",\n  \"stream_vs_http\": {\"http_ns_per_batch\": %s, \"stream_ns_per_batch\": %s, \"stream_speedup\": %.2f}",
			http_ns, stream_ns, (http_ns + 0) / (stream_ns + 0)
	}
	if (ndjson_ns != "" && binary_ns != "" && binary_ns + 0 > 0) {
		printf ",\n  \"stream_binary_vs_ndjson\": {\"ndjson_ns_per_frame\": %s, \"binary_ns_per_frame\": %s, \"binary_speedup\": %.2f",
			ndjson_ns, binary_ns, (ndjson_ns + 0) / (binary_ns + 0)
		if (binary_allocs != "") printf ", \"binary_allocs_per_op\": %s", binary_allocs
		printf "}"
	}
	if (static_cost != "" && rebalance_cost != "" && static_cost + 0 > 0) {
		printf ",\n  \"rebalance_vs_static\": {\"static_cost_per_step\": %s, \"rebalance_cost_per_step\": %s, \"cost_saved_frac\": %.3f}",
			static_cost, rebalance_cost, 1 - (rebalance_cost + 0) / (static_cost + 0)
	}
	if (local_ns != "" && cluster_ns != "" && local_ns + 0 > 0) {
		printf ",\n  \"cluster_vs_local\": {\"local_ns_per_step\": %s, \"cluster_ns_per_step\": %s, \"forwarding_overhead_ns\": %d, \"slowdown\": %.2f}",
			local_ns, cluster_ns, (cluster_ns + 0) - (local_ns + 0), (cluster_ns + 0) / (local_ns + 0)
	}
	if (lockstep_ns != "" && pipelined_ns != "" && pipelined_ns + 0 > 0) {
		printf ",\n  \"cluster_pipelined_vs_lockstep\": {\"lockstep_ns_per_step\": %s, \"pipelined_ns_per_step\": %s, \"speedup\": %.2f",
			lockstep_ns, pipelined_ns, (lockstep_ns + 0) / (pipelined_ns + 0)
		if (pipe_window != "") printf ", \"window\": %d", pipe_window + 0
		printf "}"
	}
	printf "\n}\n"
}' "$raw" > "$out"

# Splice the lab sweep's aggregated bench entry into the summary. The
# awk document's last line is the bare closing brace; drop it, put a
# comma after what is now the final entry, and append the lab JSON
# re-indented one level.
lab_json="$lab_dir/bench/bench.json"
if [ -f "$lab_json" ]; then
	spliced="$(mktemp)"
	{
		sed '$d' "$out" | sed '$s/$/,/'
		printf '  "lab_matrix": '
		sed '1!s/^/  /' "$lab_json"
		printf '}\n'
	} > "$spliced"
	mv "$spliced" "$out"
fi

# Fail loudly when an expected summary entry is missing: the benchmark it
# derives from was renamed, skipped, or broke without failing the run.
missing=0
for key in stream_vs_http stream_binary_vs_ndjson rebalance_vs_static cluster_vs_local cluster_pipelined_vs_lockstep lab_matrix; do
	if ! grep -q "\"$key\"" "$out"; then
		echo "bench.sh: missing expected summary entry \"$key\" in $out" >&2
		missing=1
	fi
done
if [ "$missing" -ne 0 ]; then
	exit 1
fi

echo "bench summary written to $out ($(grep -c '"name"' "$out") benchmarks)"
