#!/bin/sh
# doclint: fail unless every package carries a doc comment, so `go doc`
# stays useful across the tree.
#
#   - library packages need the canonical `// Package <name> ...` comment;
#   - main packages (commands, examples) need any comment block directly
#     above the `package main` clause.
#
# Run from the repository root: ./scripts/doclint.sh
set -eu

fail=0
# Capture go list up front: piping it straight into the loop would mask a
# go list failure (the pipeline's status is the while's, not go list's).
pkgs=$(go list -f '{{.Dir}}|{{.Name}}|{{.ImportPath}}' ./...)
printf '%s\n' "$pkgs" | while IFS='|' read -r dir name path; do
	found=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		[ -e "$f" ] || continue
		if [ "$name" = main ]; then
			# A comment line immediately preceding the package clause.
			if awk '/^package[ \t]/ { ok = (prev ~ /^\/\//); exit } { prev = $0 } END { exit !ok }' "$f"; then
				found=1
				break
			fi
		elif grep -q "^// Package $name" "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "doclint: $path (package $name) has no package doc comment" >&2
		fail=1
	fi
	# Propagate failures out of the while-subshell via a marker file.
	[ "$fail" -eq 0 ] || touch "${TMPDIR:-/tmp}/doclint.failed.$$"
done

if [ -e "${TMPDIR:-/tmp}/doclint.failed.$$" ]; then
	rm -f "${TMPDIR:-/tmp}/doclint.failed.$$"
	exit 1
fi
echo "doclint: every package documented"
