package mobileserver

// End-to-end integration tests crossing package boundaries: workload
// generation → simulation of every algorithm → OPT estimation → consistency
// of orderings and serialization round trips. These are the tests a
// downstream user effectively runs on day one.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agent"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestIntegrationAllAlgorithmsOnAllWorkloads(t *testing.T) {
	cfg := Config{Dim: 2, D: 3, M: 1, Delta: 0.5, Order: MoveFirst}
	for _, wl := range workload.Registry() {
		in := wl.Generate(xrand.New(42), cfg, 200)
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", wl.Name(), err)
		}
		for _, alg := range baseline.All(xrand.New(7)) {
			res, err := sim.Run(in, alg, sim.RunOptions{Mode: sim.Strict})
			if err != nil {
				t.Fatalf("%s on %s: %v", alg.Name(), wl.Name(), err)
			}
			if !(res.Cost.Total() >= 0) || math.IsNaN(res.Cost.Total()) {
				t.Fatalf("%s on %s: cost %v", alg.Name(), wl.Name(), res.Cost)
			}
			if res.MaxMove > cfg.OnlineCap()*(1+1e-9) {
				t.Fatalf("%s on %s: cap broken (%v)", alg.Name(), wl.Name(), res.MaxMove)
			}
		}
	}
}

func TestIntegrationOptBracketsEveryAlgorithm(t *testing.T) {
	// No algorithm may beat the OPT lower bound (sanity of both sides).
	cfg := Config{Dim: 1, D: 2, M: 1, Delta: 0.25, Order: MoveFirst}
	in := workload.Hotspot{Half: 12, Sigma: 1}.Generate(xrand.New(3), cfg, 250)
	est, err := offline.Best(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range baseline.All(xrand.New(9)) {
		res, err := sim.Run(in, alg, sim.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		// The augmented online algorithm can undercut the m-capped OPT by
		// at most the augmentation advantage; it must never beat the
		// certified lower bound by a large factor.
		if res.Cost.Total() < est.Lower*0.5 {
			t.Fatalf("%s cost %v below half the OPT lower bound %v", alg.Name(), res.Cost.Total(), est.Lower)
		}
	}
}

func TestIntegrationAdversaryBeatsMtCOnlyWithoutAugmentation(t *testing.T) {
	// The Theorem-1 instance punishes MtC badly; the same demand pattern
	// with augmentation (Theorem-2 instance at δ=1) stays mild.
	hard := adversary.Theorem1(adversary.Theorem1Params{T: 1600, D: 1, M: 1, Dim: 1}, xrand.New(5))
	resHard := sim.MustRun(hard.Instance, core.NewMtC(), sim.RunOptions{})
	ratioHard := sim.Ratio(resHard.Cost.Total(), hard.WitnessCost().Total())

	mild := adversary.Theorem2(adversary.Theorem2Params{T: 1600, D: 1, M: 1, Delta: 1, Rmin: 1, Rmax: 1, Dim: 1}, xrand.New(5))
	resMild := sim.MustRun(mild.Instance, core.NewMtC(), sim.RunOptions{})
	ratioMild := sim.Ratio(resMild.Cost.Total(), mild.WitnessCost().Total())

	if ratioHard < 5*ratioMild {
		t.Fatalf("augmentation gap not visible: hard %v vs mild %v", ratioHard, ratioMild)
	}
}

func TestIntegrationSerializationPreservesRuns(t *testing.T) {
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
	in := workload.Clusters{}.Generate(xrand.New(11), cfg, 150)
	var buf bytes.Buffer
	if err := traceio.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := traceio.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := sim.MustRun(in, core.NewMtC(), sim.RunOptions{})
	b := sim.MustRun(back, core.NewMtC(), sim.RunOptions{})
	if math.Abs(a.Cost.Total()-b.Cost.Total()) > 1e-9 {
		t.Fatalf("costs diverged after round trip: %v vs %v", a.Cost.Total(), b.Cost.Total())
	}
}

func TestIntegrationMovingClientMatchesCoreReduction(t *testing.T) {
	// Running Follow through the agent adapter equals simulating the
	// equivalent single-request core instance by hand.
	cfgA := agent.Config{Dim: 2, D: 2, MS: 1, MA: 1, Delta: 0}
	path := agent.RandomWalk(xrand.New(13), NewPoint(0, 0), 200, cfgA.MA)
	in := &agent.Instance{Config: cfgA, Start: NewPoint(0, 0), Path: path}
	res, err := RunAgent(in, NewFollowAgent(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Manual replay.
	follow := agent.NewFollow()
	follow.Reset(cfgA, NewPoint(0, 0))
	manual := 0.0
	prev := NewPoint(0, 0)
	for _, a := range path {
		next := follow.Move(a)
		manual += cfgA.D*dist(prev, next) + dist(next, a)
		prev = next.Clone()
	}
	if math.Abs(res.Cost.Total()-manual) > 1e-9*(1+manual) {
		t.Fatalf("adapter cost %v != manual %v", res.Cost.Total(), manual)
	}
}

func TestIntegrationFleetReducesToSingleServer(t *testing.T) {
	// A K=1 fleet must exactly match the single-server simulator on the
	// same instance — both now run on the same engine and shared types.
	cfg := Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: MoveFirst, K: 1}
	src := workload.Hotspot{}.Generate(xrand.New(17), cfg, 150)
	fin := &FleetInstance{Config: cfg, Starts: []Point{src.Start.Clone()}, Steps: src.Steps}
	fleetRes, err := RunFleet(fin, NewMtCK(), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	singleRes := sim.MustRun(src, core.NewMtC(), sim.RunOptions{})
	if math.Abs(fleetRes.Cost.Total()-singleRes.Cost.Total()) > 1e-6*(1+singleRes.Cost.Total()) {
		t.Fatalf("K=1 fleet %v != single server %v", fleetRes.Cost.Total(), singleRes.Cost.Total())
	}
	// A single-server algorithm lifted with Fleet must match bitwise.
	lifted, err := RunFleet(fin, Fleet(core.NewMtC()), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lifted.Cost != singleRes.Cost || !lifted.Final[0].Equal(singleRes.Final) {
		t.Fatalf("lifted MtC %+v != single server %+v", lifted.Cost, singleRes.Cost)
	}
}

func TestIntegrationPotentialAuditEndToEnd(t *testing.T) {
	g := adversary.Theorem2(adversary.Theorem2Params{T: 300, D: 2, M: 1, Delta: 0.5, Rmin: 2, Rmax: 2, Dim: 1}, xrand.New(19))
	res, err := analysis.AuditMtC(g.Instance, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrefixHolds {
		t.Fatal("amortized inequality failed end-to-end")
	}
}

func dist(a, b Point) float64 { return a.Sub(b).Norm() }
