// Disaster response: Section 5 of the paper motivates the Moving Client
// variant with helpers forming an ad-hoc network in a disaster area, where
// data is physically transported or carried by a mobile signal station.
// The station (mobile server) follows a search team whose leader walks a
// random search pattern; we compare server strategies and show the effect
// of the paper's d(P,A)/D damping rule.
//
//	go run ./examples/disaster
package main

import (
	"fmt"

	ms "repro"
)

func main() {
	const T = 3000
	cfg := ms.AgentConfig{Dim: 2, D: 5, MS: 1, MA: 1, Delta: 0}
	base := ms.NewPoint(0, 0)

	fmt.Println("disaster-area signal station following a search team")
	fmt.Println()
	fmt.Println("  pattern     total-cost   per-step   (D=5, m_s=m_a=1)")

	patterns := []struct {
		name string
		path []ms.Point
	}{
		{"random-walk", ms.RandomWalkPath(1, base, T, cfg.MA)},
		{"grid-sweep", ms.CommuterPath(base, ms.NewPoint(40, 0), T, cfg.MA)},
		{"perimeter", ms.PatrolPath(base, ms.NewPoint(10, 10), 12, T, cfg.MA)},
	}
	for _, p := range patterns {
		in := &ms.AgentInstance{Config: cfg, Start: base, Path: p.path}
		res, err := ms.RunAgent(in, ms.NewFollowAgent(), ms.RunOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s %10.1f   %8.3f\n", p.name, res.Cost.Total(), res.Cost.Total()/float64(T))
	}

	fmt.Println()
	fmt.Println("Theorem 10 in action: whatever the search pattern, the station's")
	fmt.Println("per-step cost stays a constant (it trails the team at distance at most")
	fmt.Println("D*m_s once caught up, trading movement cost against link distance).")
	fmt.Println()

	// Show the damping trade-off explicitly on the random walk: the
	// station deliberately lags ~D·m behind rather than mirroring every
	// zig-zag, which would multiply its movement bill by D.
	in := &ms.AgentInstance{Config: cfg, Start: base, Path: patterns[0].path}
	res, err := ms.RunAgent(in, ms.NewFollowAgent(), ms.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost split for random-walk: move=%.1f (D-weighted) vs serve=%.1f\n",
		res.Cost.Move, res.Cost.Serve)
	fmt.Println("the damped rule min(m, d/D) keeps the move share small on jittery paths.")
}
