// Lower bound demo: reproduces the Theorem 1 argument interactively. An
// adversary walks its own server in a secret coin-flip direction while
// requests first pin the online server at the start, then follow the
// adversary. Without augmentation the online algorithm can never close the
// gap, and its competitive ratio grows with the sequence length as √T —
// run for increasing T and watch the ratio climb.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"math"

	ms "repro"
)

func main() {
	fmt.Println("Theorem 1: no augmentation => ratio grows with sqrt(T)")
	fmt.Println()
	fmt.Println("      T    MtC-cost    adversary    ratio    sqrt(T)")
	for _, T := range []int{100, 400, 1600, 6400} {
		algCost, advCost := runConstruction(T)
		fmt.Printf("  %5d  %10.0f  %11.0f  %7.2f  %9.1f\n",
			T, algCost, advCost, algCost/advCost, math.Sqrt(float64(T)))
	}
	fmt.Println()
	fmt.Println("the measured ratio tracks sqrt(T): the adversary's own cost is linear")
	fmt.Println("in T while the trapped online server pays ~sqrt(T) per step forever.")
}

// runConstruction builds the Theorem-1 instance by hand against a fixed
// coin flip (direction +1; by symmetry the expectation over the coin is
// within a factor 2) and returns (online cost, adversary cost).
func runConstruction(T int) (float64, float64) {
	cfg := ms.Config{Dim: 1, D: 1, M: 1, Delta: 0, Order: ms.MoveFirst}
	x := int(math.Sqrt(float64(T)))

	in := &ms.Instance{Config: cfg, Start: ms.NewPoint(0)}
	advPos := 0.0
	advCost := 0.0
	for t := 1; t <= T; t++ {
		prev := advPos
		advPos += 1 // adversary walks m=1 per step
		advCost += cfg.D * (advPos - prev)
		var req ms.Point
		if t <= x {
			req = ms.NewPoint(0) // phase 1: pin the online server
		} else {
			req = ms.NewPoint(advPos) // phase 2: requests on the adversary
		}
		in.Steps = append(in.Steps, ms.Step{Requests: []ms.Point{req}})
		if t <= x {
			advCost += advPos // adversary serves the request at the origin
		}
	}

	res, err := ms.Run(in, ms.NewMtC(), ms.RunOptions{})
	if err != nil {
		panic(err)
	}
	return res.Cost.Total(), advCost
}
