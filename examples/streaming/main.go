// Streaming: drive a simulation Session straight from a generator loop —
// the request sequence is never materialized as an Instance, so memory
// stays constant no matter how long the stream runs. The default workload
// is 10 million steps: a demand hotspot orbiting the origin with a faster
// jitter riding on top, served by the paper's Move-to-Center algorithm.
//
// The O(1)-memory claim, concretely: a Session holds only the current
// server positions, the accumulated Result counters, and whatever
// constant-size observers are attached — nothing per step. The request
// batch below lives in one reused buffer, and the progress observer is a
// plain closure over a few scalars, so the resident state of this program
// is the same after 10 million steps as after ten. The run's entire
// resumable state is the session snapshot printed at the end — a few
// hundred bytes regardless of stream length, which is also why
// cmd/mobserve can checkpoint it to disk after every step.
//
//	go run ./examples/streaming            # 10M steps
//	go run ./examples/streaming -T 100000  # quicker look
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	ms "repro"
)

func main() {
	T := flag.Int("T", 10_000_000, "stream length (steps)")
	flag.Parse()

	cfg := ms.Config{Dim: 2, D: 4, M: 1, Delta: 0.5, Order: ms.MoveFirst}

	// A progress observer rides on the session; it is constant-size, so
	// it too works on unbounded streams.
	progress := ms.ObserverFunc(func(info ms.StepInfo) {
		if (info.T+1)%2_000_000 == 0 {
			fmt.Printf("  %9d steps: step cost %.4g, server at %v\n",
				info.T+1, info.Cost.Total(), info.Pos[0])
		}
	})

	session, err := ms.NewSession(cfg, ms.NewPoint(30, 0), ms.NewMtC(),
		ms.RunOptions{Observers: []ms.Observer{progress}})
	if err != nil {
		panic(err)
	}

	// The generator: a hotspot circling the origin at radius 30 once per
	// 200k steps, with a small fast wobble. Exactly one request per step,
	// written into a reused buffer — the loop allocates nothing per step.
	start := time.Now()
	req := ms.NewPoint(0, 0)
	batch := []ms.Point{req}
	for t := 0; t < *T; t++ {
		slow := 2 * math.Pi * float64(t) / 200_000
		fast := 2 * math.Pi * float64(t) / 97
		r := 30 + 2*math.Sin(fast)
		req[0] = r * math.Cos(slow)
		req[1] = r * math.Sin(slow)
		if err := session.Step(batch); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)

	// The snapshot is the session's complete resumable state (positions,
	// costs, step counter, algorithm state): its size is independent of
	// how many steps streamed through — the O(1)-memory claim, measured.
	snap, err := session.Snapshot()
	if err != nil {
		panic(err)
	}
	res := session.Finish()

	fmt.Printf("streamed %d steps in %v (%.1f Msteps/s)\n",
		*T, elapsed.Round(time.Millisecond), float64(*T)/elapsed.Seconds()/1e6)
	fmt.Printf("%s: %v\n", res.Algorithm, res.Cost)
	fmt.Printf("final position %v, max step %.4g (cap %.4g)\n",
		res.Final, res.MaxMove, cfg.OnlineCap())
	fmt.Printf("memory: O(1) — no Instance was ever built; full session snapshot is %d bytes after %d steps\n",
		len(snap), *T)
}
