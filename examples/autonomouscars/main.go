// Autonomous cars: the paper's introduction motivates the model with
// embedded systems in autonomous cars that share data to coordinate. Here
// a coordination page follows a car convoy along a highway (the Moving
// Client variant, Section 5): the lead car is the agent, the mobile server
// carries the shared state.
//
// The example demonstrates Theorem 10 (server at least as fast as the
// agent: constant competitive ratio, no augmentation needed) versus
// Theorem 8 (a faster agent leaves an unaugmented server ever further
// behind).
//
//	go run ./examples/autonomouscars
package main

import (
	"fmt"

	ms "repro"
)

func main() {
	const T = 2000

	fmt.Println("convoy coordination (Moving Client variant)")
	fmt.Println()

	// Scenario 1 — Theorem 10: the server infrastructure matches the
	// convoy's speed (m_s = m_a = 1). Follow-MtC stays within distance
	// ~D·m of the convoy, which is a constant per-step cost.
	cfg := ms.AgentConfig{Dim: 2, D: 3, MS: 1, MA: 1, Delta: 0}
	origin := ms.NewPoint(0, 0)
	convoy := ms.DriftPath(42, origin, T, cfg.MA, 0.15)
	in := &ms.AgentInstance{Config: cfg, Start: origin, Path: convoy}
	res, err := ms.RunAgent(in, ms.NewFollowAgent(), ms.RunOptions{})
	if err != nil {
		panic(err)
	}
	perStep := res.Cost.Total() / float64(T)
	fmt.Printf("  matched speed (m_s = m_a):  total %10.1f  per-step %6.3f\n",
		res.Cost.Total(), perStep)
	fmt.Printf("    (Theorem 10 predicts a constant per-step cost ~ D*m_s = %g)\n", cfg.D*cfg.MS)
	fmt.Println()

	// Scenario 2 — Theorem 8's regime: the convoy is 50% faster than the
	// server. The gap grows linearly; total cost grows quadratically.
	fast := ms.AgentConfig{Dim: 2, D: 3, MS: 1, MA: 1.5, Delta: 0}
	for _, horizon := range []int{500, 1000, 2000} {
		path := ms.DriftPath(43, origin, horizon, fast.MA, 0.05)
		inFast := &ms.AgentInstance{Config: fast, Start: origin, Path: path}
		resFast, err := ms.RunAgent(inFast, ms.NewFollowAgent(), ms.RunOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  fast convoy (m_a = 1.5 m_s), T=%4d: per-step cost %8.2f\n",
			horizon, resFast.Cost.Total()/float64(horizon))
	}
	fmt.Println("    (the per-step cost keeps growing with T: the server falls behind,")
	fmt.Println("     matching the Omega(sqrt(T)) lower bound of Theorem 8)")
	fmt.Println()

	// Scenario 3 — the fix suggested by Corollary 9: augment the server
	// to (1+delta) m_s with delta >= 0.5 so it can keep pace again.
	aug := ms.AgentConfig{Dim: 2, D: 3, MS: 1, MA: 1.5, Delta: 0.5}
	path := ms.DriftPath(43, origin, T, aug.MA, 0.05)
	inAug := &ms.AgentInstance{Config: aug, Start: origin, Path: path}
	resAug, err := ms.RunAgent(inAug, ms.NewFollowAgent(), ms.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  fast convoy + augmentation (delta=0.5): per-step cost %6.3f — constant again\n",
		resAug.Cost.Total()/float64(T))
}
