// Quickstart: build a small Mobile Server instance by hand, run the
// paper's Move-to-Center algorithm on it, and measure how far it lands
// from the offline optimum.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	ms "repro"
)

func main() {
	// A server with page weight D=2 lives on the line, may move at most
	// m=1 per step, and the online algorithm is augmented by δ=0.5
	// (allowed 1.5 per step).
	cfg := ms.Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: ms.MoveFirst}

	// Demand starts near the server, then marches right at the speed
	// limit — the pattern the paper's lower bounds are built from.
	in := &ms.Instance{Config: cfg, Start: ms.NewPoint(0)}
	for t := 1; t <= 30; t++ {
		in.Steps = append(in.Steps, ms.Step{
			Requests: []ms.Point{ms.NewPoint(float64(t))},
		})
	}

	res, err := ms.Run(in, ms.NewMtC(), ms.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("MtC on a marching request:\n  %v\n  final position %v (demand ended at 30)\n",
		res.Cost, res.Final)

	// How competitive was that? MeasureRatio brackets OPT with an exact
	// grid DP (lower bound) and a refined feasible trajectory (upper).
	rep, err := ms.MeasureRatio(in, ms.NewMtC())
	if err != nil {
		panic(err)
	}
	fmt.Printf("OPT in [%.4g, %.4g]  ->  competitive ratio in [%.3g, %.3g]\n",
		rep.Opt.Lower, rep.Opt.Upper, rep.RatioLow, rep.RatioHigh)
	fmt.Println("(the augmented server tracks the demand: ratio stays a small constant)")
}
