// Client is a load generator for cmd/mobserve: concurrent workers POST
// request batches from a named internal/workload generator, honor 429
// backpressure by backing off and retrying, and finally reconcile their
// own counters against the server's GET /metrics — every accepted request
// must be counted exactly once server-side, and the per-step costs the
// workers saw (summed once per step) must equal the server's running cost
// totals.
//
// The load comes from the same deterministic workload registry the
// scenario lab (internal/lab, cmd/moblab) sweeps over: -workload picks
// the generator by name (uniform, hotspot, clusters, burst, zipf, drift)
// and -seed pins the sequence, so a load pattern explored in the lab can
// be replayed against a live server verbatim. The whole instance is
// generated up front; transports only deliver it.
//
// With -stream the same workload rides the persistent streaming transport
// instead: one TCP connection is upgraded via POST /stream and every batch
// becomes a pipelined NDJSON step frame (up to -inflight of them in
// flight), acked in order by the server; backpressure arrives as typed
// throttle frames, answered with a jittered backoff and a resend of the
// same frame. Same tallies, same reconciliation — just no per-request
// HTTP overhead.
//
// Retry backoff (both transports) carries ±20% jitter, so a fleet of
// clients thrown back by the bounded queue does not re-stampede it in
// lockstep.
//
// The reconciliation assumes this client is the server's only traffic
// source since it started: steps fed by other clients (or served before a
// checkpoint/restore) are in the server's totals but not in ours.
//
//	mobserve -addr :8080 &
//	go run ./examples/client -n 10000 -workers 8
//	go run ./examples/client -n 10000 -stream                # one pipelined connection
//	go run ./examples/client -n 2000 -workers 16 -batch 1   # more contention
//
// Against a sharded server, -workload clusters (or zipf) spreads load
// over several sites so every shard of `mobserve -shards N` sees traffic:
//
//	mobserve -addr :8080 -shards 4 -k 2 &
//	go run ./examples/client -n 10000 -workload clusters
//
// With -workload drift the load is one tight hotspot that sweeps across
// the space over the whole run — the adversarial pattern for a static
// shard layout, and the workload dynamic rebalancing is built for.
// Compare the final cost of a static server against one started with
// -rebalance threshold:
//
//	mobserve -addr :8080 -shards 4 -k 2 -rebalance threshold &
//	go run ./examples/client -n 20000 -workload drift
//
// Point it at a server started with a tiny -queue to watch backpressure:
//
//	mobserve -addr :8080 -queue 1 -window 10ms &
//	go run ./examples/client -workers 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/streamclient"
	"repro/internal/wire"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "mobserve base URL")
		n        = flag.Int("n", 10_000, "total number of requests to send (whole batches; burst phases vary it)")
		batch    = flag.Int("batch", 5, "requests per POST /step call (or per stream frame)")
		workers  = flag.Int("workers", 8, "concurrent client workers (HTTP mode)")
		dim      = flag.Int("dim", 2, "request dimension (must match the server)")
		wlName   = flag.String("workload", "hotspot", "workload generator: uniform|hotspot|clusters|burst|zipf|drift")
		seed     = flag.Uint64("seed", 1, "workload random seed (same seed, same sequence)")
		stream   = flag.Bool("stream", false, "pipeline step frames over one persistent POST /stream connection instead of per-request HTTP")
		inflight = flag.Int("inflight", 32, "stream mode: maximum unacknowledged frames in flight")
		wireOpt  = flag.String("wire", "auto", "stream mode encoding: auto (negotiate binary, fall back to ndjson) | binary (require) | ndjson (pin)")
	)
	flag.Parse()
	if !strings.Contains(*addr, "://") {
		// Accept a bare host:port; every code path (http.Get and the
		// stream dial) wants a full URL.
		*addr = "http://" + *addr
	}
	batches := (*n + *batch - 1) / *batch
	gen, err := makeLoad(*wlName, *seed, *dim, *batch, batches)
	if err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
	mode := fmt.Sprintf("%d workers", *workers)
	if *stream {
		mode = fmt.Sprintf("one stream, %d frames in flight", *inflight)
	}
	fmt.Printf("driving %d %s requests (%d batches, seed %d) with %s against %s\n",
		gen.total, *wlName, batches, *seed, mode, *addr)

	var (
		accepted, retries int
		costs             map[int]wire.Cost
	)
	start := time.Now()
	if *stream {
		accepted, retries, costs, err = driveStream(*addr, gen, *dim, *inflight, *wireOpt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "client: stream: %v\n", err)
			os.Exit(1)
		}
	} else {
		accepted, retries, costs = driveHTTP(*addr, gen, *workers)
	}
	elapsed := time.Since(start)

	fmt.Printf("sent %d requests in %v (%.0f req/s), %d batches coalesced into %d steps, %d backoff-retries\n",
		accepted, elapsed.Round(time.Millisecond), float64(accepted)/elapsed.Seconds(),
		batches, len(costs), retries)

	// Reconcile with the server: sum the shared per-step costs once per
	// step, in step order, and compare against /metrics.
	var m wire.MetricsResponse
	if err := get(*addr+"/metrics", &m); err != nil {
		fmt.Fprintf(os.Stderr, "client: metrics: %v\n", err)
		os.Exit(1)
	}
	steps := make([]int, 0, len(costs))
	for s := range costs {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	var total float64
	for _, s := range steps {
		total += costs[s].Total
	}
	fmt.Printf("server metrics: %d steps, %d requests, cost %.6g (avg/step %.4g), %d rejected\n",
		m.Steps, m.Requests, m.Cost.Total, m.AvgStepCost, m.Rejected)
	for _, sh := range m.Shards {
		fmt.Printf("  shard %d: %d requests, cost %.6g\n", sh.Shard, sh.Requests, sh.Cost.Total)
	}

	ok := true
	if m.Requests != accepted {
		ok = false
		fmt.Printf("MISMATCH: server counted %d requests, client sent %d\n", m.Requests, accepted)
	}
	if rel := math.Abs(total-m.Cost.Total) / (1 + math.Abs(total)); rel > 1e-9 {
		ok = false
		fmt.Printf("MISMATCH: client-side cost sum %.9g vs server %.9g (was other traffic served?)\n", total, m.Cost.Total)
	}
	if ok {
		fmt.Println("reconciled: client-side sums equal server /metrics")
	} else {
		os.Exit(1)
	}
}

// load is the pre-generated request sequence: one wire-ready batch per
// step of a registry workload's instance. Generating up front keeps the
// transports pure delivery — the same sequence the lab would replay.
type load struct {
	batches []wire.StepRequest
	total   int
}

// makeLoad builds the instance from the named generator: T = batches
// steps, batchSize requests per step (the burst generator varies counts
// by phase, as it does in the lab).
func makeLoad(name string, seed uint64, dim, batchSize, batches int) (load, error) {
	g, err := workload.ByName(name)
	if err != nil {
		return load{}, err
	}
	g = workload.WithRequests(g, batchSize)
	cfg := core.Config{Dim: dim, D: 2, M: 1, Delta: 0.5}
	in := g.Generate(xrand.NewStream(seed, 0), cfg, batches)
	out := load{batches: make([]wire.StepRequest, len(in.Steps))}
	for i, step := range in.Steps {
		out.batches[i] = wire.StepRequest{Requests: wire.FromPoints(step.Requests)}
		out.total += len(step.Requests)
	}
	return out, nil
}

// driveHTTP is the per-request transport: a pool of workers posting
// batches, each call blocking for its step's outcome.
func driveHTTP(addr string, gen load, workers int) (accepted, retries int, costs map[int]wire.Cost) {
	type tally struct {
		accepted int
		retries  int
		costs    map[int]wire.Cost
	}
	tallies := make([]tally, workers)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tallies[w].costs = map[int]wire.Cost{}
			for b := range work {
				resp, r, err := post(addr, gen.batches[b])
				if err != nil {
					fmt.Fprintf(os.Stderr, "client: batch %d: %v\n", b, err)
					os.Exit(1)
				}
				tallies[w].accepted += resp.Accepted
				tallies[w].retries += r
				tallies[w].costs[resp.T] = resp.Cost
			}
		}(w)
	}
	for b := range gen.batches {
		work <- b
	}
	close(work)
	wg.Wait()

	costs = map[int]wire.Cost{}
	for _, t := range tallies {
		accepted += t.accepted
		retries += t.retries
		for step, c := range t.costs {
			costs[step] = c
		}
	}
	return accepted, retries, costs
}

// driveStream is the pipelined transport, built on the shared
// internal/streamclient package (the same client the cluster coordinator
// uses): one upgraded connection, every batch a pipelined step frame, up
// to inflight of them unacknowledged. Throttle frames are resent by the
// client itself after a jittered backoff; acks are tallied exactly like
// HTTP responses.
func driveStream(addr string, gen load, dim, inflight int, wireOpt string) (accepted, retries int, costs map[int]wire.Cost, err error) {
	c, err := streamclient.Dial(addr, "/stream", streamclient.Options{Dim: dim, Wire: wireOpt})
	if err != nil {
		return 0, 0, nil, err
	}
	defer c.Close()
	w := c.Welcome()
	fmt.Printf("stream open: %s at step %d (dim %d, %s frames)\n", w.Algorithm, w.T, w.Dim, c.Wire())

	// Writer: pipeline fresh frames as the in-flight window allows. The
	// semaphore is released per ack; a throttled frame keeps its slot
	// until its resend is acked (resends happen inside the client).
	sem := make(chan struct{}, inflight)
	pends := make(chan *streamclient.Pending, inflight)
	writeErr := make(chan error, 1)
	go func() {
		defer close(pends)
		for b := range gen.batches {
			sem <- struct{}{}
			p, err := c.Step(gen.batches[b].Requests)
			if err != nil {
				writeErr <- err
				return
			}
			pends <- p
		}
	}()

	// Reader: every frame is eventually answered by exactly one ack (or
	// the connection's fatal error).
	costs = map[int]wire.Cost{}
	for p := range pends {
		ack, err := p.Wait()
		if err != nil {
			return 0, 0, nil, err
		}
		accepted += ack.Accepted
		costs[ack.T] = ack.Cost
		p.Release() // recycle the pooled frame once the ack is tallied
		<-sem
	}
	select {
	case err := <-writeErr:
		return 0, 0, nil, err
	default:
	}
	return accepted, int(c.Throttles()), costs, nil
}

// post sends one batch, retrying on 429 after the server's backoff hint:
// the JSON body's retry_after_ms when present (millisecond resolution),
// falling back to the whole-second Retry-After header, capped so a coarse
// header cannot stall the generator, and jittered ±20% so concurrent
// clients desynchronize. It returns the step outcome and how many times
// it was told to back off.
func post(addr string, body wire.StepRequest) (wire.StepResponse, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return wire.StepResponse{}, 0, err
	}
	retries := 0
	for {
		resp, err := http.Post(addr+"/step", "application/json", bytes.NewReader(buf))
		if err != nil {
			return wire.StepResponse{}, retries, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return wire.StepResponse{}, retries, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var sr wire.StepResponse
			if err := wire.UnmarshalStrict(data, &sr); err != nil {
				return wire.StepResponse{}, retries, err
			}
			return sr, retries, nil
		case http.StatusTooManyRequests:
			retries++
			wait := 5 * time.Millisecond
			var e wire.ErrorResponse
			// Best-effort probe for a retry hint: a 429 body that fails to
			// parse just falls back to the Retry-After header, so leniency
			// here cannot corrupt state.
			//moblint:rawdecode best-effort 429 retry-hint probe with header fallback
			if err := json.Unmarshal(data, &e); err == nil && e.RetryAfterMs > 0 {
				wait = time.Duration(e.RetryAfterMs) * time.Millisecond
			} else if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				wait = time.Duration(sec) * time.Second
			}
			if wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			time.Sleep(streamclient.Jitter(wait))
		default:
			return wire.StepResponse{}, retries, fmt.Errorf("POST /step: %s: %s", resp.Status, data)
		}
	}
}

func get(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// /metrics and /state feed the reconciliation check; decode them as
	// strictly as the frames, so a schema drift fails loudly here rather
	// than as a bogus mismatch report.
	return wire.UnmarshalStrict(data, v)
}
