// Client is a load generator for cmd/mobserve: concurrent workers POST
// request batches from a moving-hotspot workload, honor 429 backpressure by
// backing off and retrying, and finally reconcile their own counters
// against the server's GET /metrics — every accepted request must be
// counted exactly once server-side, and the per-step costs the workers saw
// (summed once per step) must equal the server's running cost totals.
//
// With -stream the same workload rides the persistent streaming transport
// instead: one TCP connection is upgraded via POST /stream and every batch
// becomes a pipelined NDJSON step frame (up to -inflight of them in
// flight), acked in order by the server; backpressure arrives as typed
// throttle frames, answered with a jittered backoff and a resend of the
// same frame. Same tallies, same reconciliation — just no per-request
// HTTP overhead.
//
// Retry backoff (both transports) carries ±20% jitter, so a fleet of
// clients thrown back by the bounded queue does not re-stampede it in
// lockstep.
//
// The reconciliation assumes this client is the server's only traffic
// source since it started: steps fed by other clients (or served before a
// checkpoint/restore) are in the server's totals but not in ours.
//
//	mobserve -addr :8080 &
//	go run ./examples/client -n 10000 -workers 8
//	go run ./examples/client -n 10000 -stream                # one pipelined connection
//	go run ./examples/client -n 2000 -workers 16 -batch 1   # more contention
//
// Against a sharded server, -regions spreads the load over that many
// distinct hotspots across [-span, span] on axis 0 (one per region,
// round-robin), so every shard of `mobserve -shards N` sees traffic:
//
//	mobserve -addr :8080 -shards 4 -k 2 &
//	go run ./examples/client -n 10000 -regions 4
//
// With -drift the load is instead one tight hotspot that sweeps across
// [-span, span] over the whole run — the adversarial pattern for a static
// shard layout, and the workload dynamic rebalancing is built for. Compare
// the final cost of a static server against one started with
// -rebalance threshold:
//
//	mobserve -addr :8080 -shards 4 -k 2 -rebalance threshold &
//	go run ./examples/client -n 20000 -drift
//
// Point it at a server started with a tiny -queue to watch backpressure:
//
//	mobserve -addr :8080 -queue 1 -window 10ms &
//	go run ./examples/client -workers 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/streamclient"
	"repro/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "mobserve base URL")
		n        = flag.Int("n", 10_000, "total number of requests to send")
		batch    = flag.Int("batch", 5, "requests per POST /step call (or per stream frame)")
		workers  = flag.Int("workers", 8, "concurrent client workers (HTTP mode)")
		dim      = flag.Int("dim", 2, "request dimension (must match the server)")
		regions  = flag.Int("regions", 1, "distinct hotspot regions across [-span, span] (match the server's -shards)")
		span     = flag.Float64("span", 25, "half-width of the region interval (match the server's -span)")
		drift    = flag.Bool("drift", false, "one tight hotspot sweeping across [-span, span] over the run (exercises dynamic rebalancing)")
		stream   = flag.Bool("stream", false, "pipeline step frames over one persistent POST /stream connection instead of per-request HTTP")
		inflight = flag.Int("inflight", 32, "stream mode: maximum unacknowledged frames in flight")
		wireOpt  = flag.String("wire", "auto", "stream mode encoding: auto (negotiate binary, fall back to ndjson) | binary (require) | ndjson (pin)")
	)
	flag.Parse()
	if !strings.Contains(*addr, "://") {
		// Accept a bare host:port; every code path (http.Get and the
		// stream dial) wants a full URL.
		*addr = "http://" + *addr
	}
	batches := (*n + *batch - 1) / *batch
	gen := workload{regions: *regions, span: *span, dim: *dim, drift: *drift, batches: batches}
	mode := fmt.Sprintf("%d workers", *workers)
	if *stream {
		mode = fmt.Sprintf("one stream, %d frames in flight", *inflight)
	}
	fmt.Printf("driving %d requests (%d batches of %d) with %s against %s\n",
		*n, batches, *batch, mode, *addr)

	var (
		accepted, retries int
		costs             map[int]wire.Cost
		err               error
	)
	start := time.Now()
	if *stream {
		accepted, retries, costs, err = driveStream(*addr, gen, *n, *batch, *inflight, *wireOpt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "client: stream: %v\n", err)
			os.Exit(1)
		}
	} else {
		accepted, retries, costs = driveHTTP(*addr, gen, *n, *batch, *workers)
	}
	elapsed := time.Since(start)

	fmt.Printf("sent %d requests in %v (%.0f req/s), %d batches coalesced into %d steps, %d backoff-retries\n",
		accepted, elapsed.Round(time.Millisecond), float64(accepted)/elapsed.Seconds(),
		batches, len(costs), retries)

	// Reconcile with the server: sum the shared per-step costs once per
	// step, in step order, and compare against /metrics.
	var m wire.MetricsResponse
	if err := get(*addr+"/metrics", &m); err != nil {
		fmt.Fprintf(os.Stderr, "client: metrics: %v\n", err)
		os.Exit(1)
	}
	steps := make([]int, 0, len(costs))
	for s := range costs {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	var total float64
	for _, s := range steps {
		total += costs[s].Total
	}
	fmt.Printf("server metrics: %d steps, %d requests, cost %.6g (avg/step %.4g), %d rejected\n",
		m.Steps, m.Requests, m.Cost.Total, m.AvgStepCost, m.Rejected)
	for _, sh := range m.Shards {
		fmt.Printf("  shard %d: %d requests, cost %.6g\n", sh.Shard, sh.Requests, sh.Cost.Total)
	}

	ok := true
	if m.Requests != accepted {
		ok = false
		fmt.Printf("MISMATCH: server counted %d requests, client sent %d\n", m.Requests, accepted)
	}
	if rel := math.Abs(total-m.Cost.Total) / (1 + math.Abs(total)); rel > 1e-9 {
		ok = false
		fmt.Printf("MISMATCH: client-side cost sum %.9g vs server %.9g (was other traffic served?)\n", total, m.Cost.Total)
	}
	if ok {
		fmt.Println("reconciled: client-side sums equal server /metrics")
	} else {
		os.Exit(1)
	}
}

// driveHTTP is the per-request transport: a pool of workers posting
// batches, each call blocking for its step's outcome.
func driveHTTP(addr string, gen workload, n, batchSize, workers int) (accepted, retries int, costs map[int]wire.Cost) {
	type tally struct {
		accepted int
		retries  int
		costs    map[int]wire.Cost
	}
	batches := (n + batchSize - 1) / batchSize
	tallies := make([]tally, workers)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tallies[w].costs = map[int]wire.Cost{}
			for b := range work {
				size := batchSize
				if rest := n - b*batchSize; rest < size {
					size = rest
				}
				resp, r, err := post(addr, gen.batch(b, size))
				if err != nil {
					fmt.Fprintf(os.Stderr, "client: batch %d: %v\n", b, err)
					os.Exit(1)
				}
				tallies[w].accepted += resp.Accepted
				tallies[w].retries += r
				tallies[w].costs[resp.T] = resp.Cost
			}
		}(w)
	}
	for b := 0; b < batches; b++ {
		work <- b
	}
	close(work)
	wg.Wait()

	costs = map[int]wire.Cost{}
	for _, t := range tallies {
		accepted += t.accepted
		retries += t.retries
		for step, c := range t.costs {
			costs[step] = c
		}
	}
	return accepted, retries, costs
}

// driveStream is the pipelined transport, built on the shared
// internal/streamclient package (the same client the cluster coordinator
// uses): one upgraded connection, every batch a pipelined step frame, up
// to inflight of them unacknowledged. Throttle frames are resent by the
// client itself after a jittered backoff; acks are tallied exactly like
// HTTP responses.
func driveStream(addr string, gen workload, n, batchSize, inflight int, wireOpt string) (accepted, retries int, costs map[int]wire.Cost, err error) {
	c, err := streamclient.Dial(addr, "/stream", streamclient.Options{Dim: gen.dim, Wire: wireOpt})
	if err != nil {
		return 0, 0, nil, err
	}
	defer c.Close()
	w := c.Welcome()
	fmt.Printf("stream open: %s at step %d (dim %d, %s frames)\n", w.Algorithm, w.T, w.Dim, c.Wire())

	// Writer: pipeline fresh frames as the in-flight window allows. The
	// semaphore is released per ack; a throttled frame keeps its slot
	// until its resend is acked (resends happen inside the client).
	batches := (n + batchSize - 1) / batchSize
	sem := make(chan struct{}, inflight)
	pends := make(chan *streamclient.Pending, inflight)
	writeErr := make(chan error, 1)
	go func() {
		defer close(pends)
		for b := 0; b < batches; b++ {
			size := batchSize
			if rest := n - b*batchSize; rest < size {
				size = rest
			}
			sem <- struct{}{}
			p, err := c.Step(gen.batch(b, size).Requests)
			if err != nil {
				writeErr <- err
				return
			}
			pends <- p
		}
	}()

	// Reader: every frame is eventually answered by exactly one ack (or
	// the connection's fatal error).
	costs = map[int]wire.Cost{}
	for p := range pends {
		ack, err := p.Wait()
		if err != nil {
			return 0, 0, nil, err
		}
		accepted += ack.Accepted
		costs[ack.T] = ack.Cost
		p.Release() // recycle the pooled frame once the ack is tallied
		<-sem
	}
	select {
	case err := <-writeErr:
		return 0, 0, nil, err
	default:
	}
	return accepted, int(c.Throttles()), costs, nil
}

// workload generates the deterministic load: with one region, requests
// cluster on a hotspot orbiting the origin at radius 20 (the original
// workload); with R > 1 regions, batch b's hotspot orbits the center of
// region b%R across [-span, span] on axis 0, so a sharded server sees
// round-robin traffic in every shard. With drift the hotspot instead
// sweeps linearly across [-0.8·span, 0.8·span] over the whole run,
// crossing every shard boundary — the pattern a static layout handles
// worst and a rebalancing server absorbs by migrating servers after it.
type workload struct {
	regions int
	span    float64
	dim     int
	drift   bool
	batches int
}

func (g workload) batch(b, size int) wire.StepRequest {
	cx, radius := 0.0, 20.0
	if g.drift {
		frac := 0.0
		if g.batches > 1 {
			frac = float64(b) / float64(g.batches-1)
		}
		cx = g.span * (-0.8 + 1.6*frac)
		radius = 0.1 * g.span
	} else if g.regions > 1 {
		width := 2 * g.span / float64(g.regions)
		cx = -g.span + width*(float64(b%g.regions)+0.5)
		radius = 0.35 * width
	}
	reqs := make([]wire.Point, size)
	for i := range reqs {
		angle := 2 * math.Pi * float64(b) / 500
		jitter := 0.5 * math.Sin(float64(b*7+i*13))
		p := make(wire.Point, g.dim)
		p[0] = cx + (radius+jitter)*math.Cos(angle)
		if g.dim > 1 {
			p[1] = (radius + jitter) * math.Sin(angle)
		}
		reqs[i] = p
	}
	return wire.StepRequest{Requests: reqs}
}

// post sends one batch, retrying on 429 after the server's backoff hint:
// the JSON body's retry_after_ms when present (millisecond resolution),
// falling back to the whole-second Retry-After header, capped so a coarse
// header cannot stall the generator, and jittered ±20% so concurrent
// clients desynchronize. It returns the step outcome and how many times
// it was told to back off.
func post(addr string, body wire.StepRequest) (wire.StepResponse, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return wire.StepResponse{}, 0, err
	}
	retries := 0
	for {
		resp, err := http.Post(addr+"/step", "application/json", bytes.NewReader(buf))
		if err != nil {
			return wire.StepResponse{}, retries, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return wire.StepResponse{}, retries, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var sr wire.StepResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				return wire.StepResponse{}, retries, err
			}
			return sr, retries, nil
		case http.StatusTooManyRequests:
			retries++
			wait := 5 * time.Millisecond
			var e wire.ErrorResponse
			if err := json.Unmarshal(data, &e); err == nil && e.RetryAfterMs > 0 {
				wait = time.Duration(e.RetryAfterMs) * time.Millisecond
			} else if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				wait = time.Duration(sec) * time.Second
			}
			if wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			time.Sleep(streamclient.Jitter(wait))
		default:
			return wire.StepResponse{}, retries, fmt.Errorf("POST /step: %s: %s", resp.Status, data)
		}
	}
}

func get(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
