// Client is a load generator for cmd/mobserve: concurrent workers POST
// request batches from a moving-hotspot workload, honor 429 backpressure by
// backing off and retrying, and finally reconcile their own counters
// against the server's GET /metrics — every accepted request must be
// counted exactly once server-side, and the per-step costs the workers saw
// (summed once per step) must equal the server's running cost totals.
//
// The reconciliation assumes this client is the server's only traffic
// source since it started: steps fed by other clients (or served before a
// checkpoint/restore) are in the server's totals but not in ours.
//
//	mobserve -addr :8080 &
//	go run ./examples/client -n 10000 -workers 8
//	go run ./examples/client -n 2000 -workers 16 -batch 1   # more contention
//
// Against a sharded server, -regions spreads the load over that many
// distinct hotspots across [-span, span] on axis 0 (one per region,
// round-robin), so every shard of `mobserve -shards N` sees traffic:
//
//	mobserve -addr :8080 -shards 4 -k 2 &
//	go run ./examples/client -n 10000 -regions 4
//
// Point it at a server started with a tiny -queue to watch backpressure:
//
//	mobserve -addr :8080 -queue 1 -window 10ms &
//	go run ./examples/client -workers 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "mobserve base URL")
		n       = flag.Int("n", 10_000, "total number of requests to send")
		batch   = flag.Int("batch", 5, "requests per POST /step call")
		workers = flag.Int("workers", 8, "concurrent client workers")
		dim     = flag.Int("dim", 2, "request dimension (must match the server)")
		regions = flag.Int("regions", 1, "distinct hotspot regions across [-span, span] (match the server's -shards)")
		span    = flag.Float64("span", 25, "half-width of the region interval (match the server's -span)")
	)
	flag.Parse()
	gen := workload{regions: *regions, span: *span, dim: *dim}

	batches := (*n + *batch - 1) / *batch
	fmt.Printf("driving %d requests (%d batches of %d) with %d workers against %s\n",
		*n, batches, *batch, *workers, *addr)

	type tally struct {
		accepted int
		retries  int
		costs    map[int]wire.Cost
	}
	tallies := make([]tally, *workers)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tallies[w].costs = map[int]wire.Cost{}
			for b := range work {
				size := *batch
				if rest := *n - b**batch; rest < size {
					size = rest
				}
				resp, retries, err := post(*addr, gen.batch(b, size))
				if err != nil {
					fmt.Fprintf(os.Stderr, "client: batch %d: %v\n", b, err)
					os.Exit(1)
				}
				tallies[w].accepted += resp.Accepted
				tallies[w].retries += retries
				tallies[w].costs[resp.T] = resp.Cost
			}
		}(w)
	}
	for b := 0; b < batches; b++ {
		work <- b
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	accepted, retries := 0, 0
	costs := map[int]wire.Cost{}
	for _, t := range tallies {
		accepted += t.accepted
		retries += t.retries
		for step, c := range t.costs {
			costs[step] = c
		}
	}
	fmt.Printf("sent %d requests in %v (%.0f req/s), %d batches coalesced into %d steps, %d 429-retries\n",
		accepted, elapsed.Round(time.Millisecond), float64(accepted)/elapsed.Seconds(),
		batches, len(costs), retries)

	// Reconcile with the server: sum the shared per-step costs once per
	// step, in step order, and compare against /metrics.
	var m wire.MetricsResponse
	if err := get(*addr+"/metrics", &m); err != nil {
		fmt.Fprintf(os.Stderr, "client: metrics: %v\n", err)
		os.Exit(1)
	}
	steps := make([]int, 0, len(costs))
	for s := range costs {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	var total float64
	for _, s := range steps {
		total += costs[s].Total
	}
	fmt.Printf("server metrics: %d steps, %d requests, cost %.6g (avg/step %.4g), %d rejected\n",
		m.Steps, m.Requests, m.Cost.Total, m.AvgStepCost, m.Rejected)
	for _, sh := range m.Shards {
		fmt.Printf("  shard %d: %d requests, cost %.6g\n", sh.Shard, sh.Requests, sh.Cost.Total)
	}

	ok := true
	if m.Requests != accepted {
		ok = false
		fmt.Printf("MISMATCH: server counted %d requests, client sent %d\n", m.Requests, accepted)
	}
	if rel := math.Abs(total-m.Cost.Total) / (1 + math.Abs(total)); rel > 1e-9 {
		ok = false
		fmt.Printf("MISMATCH: client-side cost sum %.9g vs server %.9g (was other traffic served?)\n", total, m.Cost.Total)
	}
	if ok {
		fmt.Println("reconciled: client-side sums equal server /metrics")
	} else {
		os.Exit(1)
	}
}

// workload generates the deterministic load: with one region, requests
// cluster on a hotspot orbiting the origin at radius 20 (the original
// workload); with R > 1 regions, batch b's hotspot orbits the center of
// region b%R across [-span, span] on axis 0, so a sharded server sees
// round-robin traffic in every shard.
type workload struct {
	regions int
	span    float64
	dim     int
}

func (g workload) batch(b, size int) wire.StepRequest {
	cx, radius := 0.0, 20.0
	if g.regions > 1 {
		width := 2 * g.span / float64(g.regions)
		cx = -g.span + width*(float64(b%g.regions)+0.5)
		radius = 0.35 * width
	}
	reqs := make([]wire.Point, size)
	for i := range reqs {
		angle := 2 * math.Pi * float64(b) / 500
		jitter := 0.5 * math.Sin(float64(b*7+i*13))
		p := make(wire.Point, g.dim)
		p[0] = cx + (radius+jitter)*math.Cos(angle)
		if g.dim > 1 {
			p[1] = (radius + jitter) * math.Sin(angle)
		}
		reqs[i] = p
	}
	return wire.StepRequest{Requests: reqs}
}

// post sends one batch, retrying on 429 after the server's backoff hint:
// the JSON body's retry_after_ms when present (millisecond resolution),
// falling back to the whole-second Retry-After header, capped so a coarse
// header cannot stall the generator. It returns the step outcome and how
// many times it was told to back off.
func post(addr string, body wire.StepRequest) (wire.StepResponse, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return wire.StepResponse{}, 0, err
	}
	retries := 0
	for {
		resp, err := http.Post(addr+"/step", "application/json", bytes.NewReader(buf))
		if err != nil {
			return wire.StepResponse{}, retries, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return wire.StepResponse{}, retries, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var sr wire.StepResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				return wire.StepResponse{}, retries, err
			}
			return sr, retries, nil
		case http.StatusTooManyRequests:
			retries++
			wait := 5 * time.Millisecond
			var e wire.ErrorResponse
			if err := json.Unmarshal(data, &e); err == nil && e.RetryAfterMs > 0 {
				wait = time.Duration(e.RetryAfterMs) * time.Millisecond
			} else if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				wait = time.Duration(sec) * time.Second
			}
			if wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			time.Sleep(wait)
		default:
			return wire.StepResponse{}, retries, fmt.Errorf("POST /step: %s: %s", resp.Status, data)
		}
	}
}

func get(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
