// Edge cache: the paper's motivating edge-computing scenario. A data page
// is cached on one mobile edge node while user demand drifts through a
// city during the day (morning: residential district; midday: business
// district; evening: entertainment district). The example compares the
// paper's Move-to-Center algorithm with two natural strategies on the
// identical demand trace.
//
//	go run ./examples/edgecache
package main

import (
	"fmt"
	"math/rand/v2"

	ms "repro"
)

// district demand centers (kilometer grid).
var districts = []ms.Point{
	ms.NewPoint(0, 0),  // residential
	ms.NewPoint(12, 5), // business
	ms.NewPoint(6, 12), // entertainment
}

// demandTrace builds a day of two-minute steps: the active district
// changes twice, demand scatters around the active center, and volume
// doubles at midday.
func demandTrace(cfg ms.Config, rng *rand.Rand) *ms.Instance {
	const T = 24 * 60 / 2 // 720 two-minute steps
	in := &ms.Instance{Config: cfg, Start: districts[0].Clone()}
	for t := 0; t < T; t++ {
		district := districts[t*3/T] // three equal phases
		requests := 2
		if t*3/T == 1 {
			requests = 4 // business hours are busier
		}
		step := ms.Step{}
		for i := 0; i < requests; i++ {
			step.Requests = append(step.Requests, ms.NewPoint(
				district[0]+rng.NormFloat64()*1.5,
				district[1]+rng.NormFloat64()*1.5,
			))
		}
		in.Steps = append(in.Steps, step)
	}
	return in
}

func main() {
	// The cache moves at most 200 m per two-minute step (m=0.2 km); a
	// page transfer costs D=10 times the distance; the online cache gets
	// 25% augmentation.
	cfg := ms.Config{Dim: 2, D: 10, M: 0.2, Delta: 0.25, Order: ms.MoveFirst}
	in := demandTrace(cfg, rand.New(rand.NewPCG(7, 7)))

	fmt.Println("edge-cache day simulation (720 steps, 3 district phases)")
	fmt.Println()
	for _, alg := range []ms.Algorithm{ms.NewMtC(), &lazy{}, &chase{}} {
		res, err := ms.Run(in, alg, ms.RunOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-12s total %9.1f   (move %8.1f  serve %8.1f)\n",
			alg.Name(), res.Cost.Total(), res.Cost.Move, res.Cost.Serve)
	}
	fmt.Println()
	fmt.Println("MtC pays some movement to follow the district hand-offs and wins on")
	fmt.Println("serving; Lazy never moves and bleeds distance all afternoon; Chase")
	fmt.Println("sprints after single requests and overpays D x distance on scatter.")
}

// lazy never moves — the classical "do nothing" strawman.
type lazy struct{ pos ms.Point }

// Name implements ms.Algorithm.
func (l *lazy) Name() string { return "Lazy" }

// Reset implements ms.Algorithm.
func (l *lazy) Reset(_ ms.Config, start ms.Point) { l.pos = start.Clone() }

// Move implements ms.Algorithm.
func (l *lazy) Move(_ []ms.Point) ms.Point { return l.pos }

// chase heads for the first request of every batch at full allowed speed,
// ignoring the rest of the batch and the D-weighting.
type chase struct {
	cfg ms.Config
	pos ms.Point
}

// Name implements ms.Algorithm.
func (c *chase) Name() string { return "Chase" }

// Reset implements ms.Algorithm.
func (c *chase) Reset(cfg ms.Config, start ms.Point) {
	c.cfg = cfg
	c.pos = start.Clone()
}

// Move implements ms.Algorithm.
func (c *chase) Move(reqs []ms.Point) ms.Point {
	if len(reqs) == 0 {
		return c.pos
	}
	target := reqs[0]
	step := c.cfg.OnlineCap()
	// Walk toward the target without overshooting.
	d := dist(c.pos, target)
	if d <= step {
		c.pos = target.Clone()
	} else {
		c.pos = lerp(c.pos, target, step/d)
	}
	return c.pos
}

func dist(a, b ms.Point) float64 { return a.Sub(b).Norm() }

func lerp(a, b ms.Point, t float64) ms.Point { return a.Add(b.Sub(a).Scale(t)) }
